"""Search determinism, runtime integration and tuning-safety properties."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.vector_latency import mv2_gpu_nc_latency
from repro.hw import Cluster, KiB, MiB
from repro.mpi import BYTE, Datatype, MpiWorld
from repro.mpi.pack import pack_bytes
from repro.perf.stats import PERF
from repro.tune import LayoutSignature, TuningEntry, TuningTable, TuningTableError
from repro.tune.search import (
    Candidate,
    SearchSpace,
    pipeline_engages,
    run_search,
)

SIG = LayoutSignature("uniform", width=4, pitch=8)
SMOKE = SearchSpace.smoke()


def table_bytes(table):
    return json.dumps(table.to_json(), sort_keys=True).encode()


def vector_table(chunk_bytes, bucket=64 * KiB, cluster_hash="test"):
    table = TuningTable(cluster_hash)
    table.set(SIG, bucket, TuningEntry(
        chunk_bytes=chunk_bytes,
        pipeline_threshold=min(chunk_bytes, 64 * KiB),
        tbuf_chunks=64, use_plans=True,
    ))
    return table


class TestSearchDeterminism:
    def test_byte_identical_across_runs(self):
        a = run_search(message_sizes=[64 * KiB], space=SMOKE, iterations=2)
        b = run_search(message_sizes=[64 * KiB], space=SMOKE, iterations=2)
        assert table_bytes(a) == table_bytes(b)

    def test_byte_identical_across_jobs(self):
        serial = run_search(message_sizes=[64 * KiB], space=SMOKE,
                            iterations=2)
        fanned = run_search(message_sizes=[64 * KiB], space=SMOKE,
                            iterations=2, jobs=2)
        assert table_bytes(serial) == table_bytes(fanned)

    def test_byte_identical_across_shards(self):
        seq = run_search(message_sizes=[64 * KiB], space=SMOKE, iterations=2)
        shd = run_search(message_sizes=[64 * KiB], space=SMOKE, iterations=2,
                         shards=2)
        assert table_bytes(seq) == table_bytes(shd)

    def test_default_always_evaluated(self):
        # Even a space excluding the default chunk carries an
        # apples-to-apples default_latency per entry.
        space = SearchSpace(chunk_bytes=(16 * KiB,), tbuf_chunks=(64,),
                            use_plans=(True,))
        table = run_search(message_sizes=[64 * KiB], space=space,
                           iterations=2)
        (entry,) = table.entries.values()
        assert entry.default_latency > 0
        assert entry.latency <= entry.default_latency


class TestSearchOutcome:
    def test_finds_non_default_chunk_for_64k(self):
        # The acceptance bucket: a 64 KiB message is faster with a 16 KiB
        # chunk than with the paper's 64 KiB global default.
        table = run_search(message_sizes=[64 * KiB], space=SMOKE,
                           iterations=2)
        (entry,) = table.entries.values()
        assert entry.chunk_bytes == 16 * KiB
        assert entry.latency < entry.default_latency

    def test_tuned_never_slower_than_default(self):
        table = run_search(message_sizes=[4 * KiB, 64 * KiB], space=SMOKE,
                           iterations=2)
        for entry in table.entries.values():
            assert entry.latency <= entry.default_latency


class TestRuntimeIntegration:
    def test_attached_table_speeds_up_64k(self):
        table = run_search(message_sizes=[64 * KiB], space=SMOKE,
                           iterations=2)
        default = mv2_gpu_nc_latency(64 * KiB, iterations=3)
        tuned = mv2_gpu_nc_latency(64 * KiB, iterations=3, tuning=table)
        assert tuned < default

    def test_lookup_counters_bump(self):
        table = vector_table(16 * KiB)
        before = PERF.snapshot().get("tune_lookup_hit", 0)
        mv2_gpu_nc_latency(64 * KiB, iterations=1, tuning=table)
        assert PERF.snapshot().get("tune_lookup_hit", 0) > before

    def test_no_table_no_counters(self):
        before = PERF.snapshot()
        mv2_gpu_nc_latency(64 * KiB, iterations=1)
        after = PERF.snapshot()
        for name in ("tune_lookup_hit", "tune_lookup_miss"):
            assert after.get(name, 0) == before.get(name, 0)

    def test_oversized_tuned_chunk_is_safe(self):
        # Tuned chunk (256 KiB) above the default 64 KiB staging size:
        # the world grows its pools to fit, and the payload survives.
        table = vector_table(256 * KiB, bucket=1 * MiB)
        t = mv2_gpu_nc_latency(1 * MiB, iterations=2, verify=True,
                               tuning=table)
        assert t > 0

    def test_explicit_small_vbufs_clamp(self):
        # A user-pinned vbuf size smaller than the tuned chunk must clamp
        # the preference (counter proves it) and still verify.
        table = vector_table(256 * KiB, bucket=1 * MiB)
        rows = (1 * MiB) // 4
        vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
        cluster = Cluster(2)
        world = MpiWorld(cluster, vbuf_bytes=64 * KiB, tuning=table)

        def program(ctx):
            buf = ctx.cuda.malloc(rows * 8)
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)

        before = PERF.snapshot().get("tune_chunk_clamped", 0)
        world.run(program)
        assert PERF.snapshot().get("tune_chunk_clamped", 0) > before

    def test_tuning_false_disables_config_table(self):
        from repro.core import GpuNcConfig

        cfg = GpuNcConfig(tuning_table=vector_table(16 * KiB))
        cluster = Cluster(2)
        world = MpiWorld(cluster, gpu_config=cfg, tuning=False)
        assert world.tuning is None

    def test_config_table_used_when_no_world_arg(self):
        from repro.core import GpuNcConfig

        table = vector_table(16 * KiB)
        cfg = GpuNcConfig(tuning_table=table)
        world = MpiWorld(Cluster(2), gpu_config=cfg)
        assert world.tuning is table

    def test_tuning_path_validates_cluster(self, tmp_path):
        path = vector_table(16 * KiB).save(tmp_path / "t.json")
        with pytest.raises(TuningTableError, match="tuned for cluster"):
            MpiWorld(Cluster(2), tuning=path)

    def test_tuning_true_requires_persisted_table(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TUNING_DIR", str(tmp_path))
        with pytest.raises(TuningTableError, match="cannot read"):
            MpiWorld(Cluster(2), tuning=True)


class TestDegenerateTrials:
    """Threshold/chunk coupling: degenerate candidates are normalized at
    grid construction and rejected (loudly) per size, never silently
    measured as configs that cannot mean what their knobs say."""

    def test_candidates_normalize_threshold(self):
        space = SearchSpace(chunk_bytes=(8 * KiB, 64 * KiB),
                            pipeline_threshold=(256 * KiB,),
                            tbuf_chunks=(64,), use_plans=(True,))
        for cand in space.candidates():
            assert cand.pipeline_threshold <= cand.chunk_bytes

    def test_pipeline_engages(self):
        cand = Candidate(64 * KiB, 16 * KiB, 64, True)
        assert pipeline_engages(8 * KiB, cand)      # under the floor
        assert pipeline_engages(256 * KiB, cand)    # multiple chunks
        assert not pipeline_engages(32 * KiB, cand)  # one chunk, no floor

    def test_degenerate_trials_rejected(self):
        # A 128 KiB message against a 256 KiB chunk with a 64 KiB floor:
        # the config claims to pipeline but never can. The trial is
        # dropped with a warning and the rejection counter fires; the
        # default still produces the bucket's entry.
        space = SearchSpace(chunk_bytes=(256 * KiB,), tbuf_chunks=(64,),
                            use_plans=(True,))
        before = PERF.snapshot().get("tune_trial_rejected", 0)
        with pytest.warns(UserWarning, match="tuning trial rejected"):
            table = run_search(message_sizes=[128 * KiB], space=space,
                               iterations=1)
        assert PERF.snapshot().get("tune_trial_rejected", 0) > before
        (entry,) = table.entries.values()
        assert entry.chunk_bytes == 64 * KiB  # the default survived

    def test_entry_rejects_inverted_threshold(self):
        with pytest.raises(TuningTableError, match="pipeline_threshold"):
            TuningEntry(chunk_bytes=16 * KiB, pipeline_threshold=64 * KiB,
                        tbuf_chunks=64, use_plans=True)

    def test_denormalized_config_warns(self):
        # Candidate.to_config passes the threshold through unclamped, so
        # a hand-built degenerate candidate trips the GpuNcConfig
        # validation warning instead of being silently repaired.
        with pytest.warns(UserWarning, match="pipeline_threshold"):
            Candidate(16 * KiB, 64 * KiB, 64, True).to_config()


class TestBackendAxis:
    SPACE = SearchSpace(chunk_bytes=(64 * KiB,), tbuf_chunks=(64,),
                        use_plans=(True,),
                        backend=("gpu", "host", "nic"))

    def test_wide_workload_picks_nic(self):
        # 4 KiB segments: per-segment descriptor cost is tiny next to the
        # GPU pack stage, so the NIC offload wins the bucket and the
        # guideline guard lets the (genuinely modeled-cheaper) pick stand.
        table = run_search(message_sizes=[64 * KiB], space=self.SPACE,
                           iterations=2, elem_bytes=4 * KiB)
        (entry,) = table.entries.values()
        assert entry.backend == "nic"
        assert entry.latency < entry.default_latency

    def test_fine_workload_keeps_gpu(self):
        # 4-byte segments: host/nic per-segment costs explode; the
        # default GPU pipeline keeps every bucket.
        table = run_search(message_sizes=[64 * KiB], space=self.SPACE,
                           iterations=2)
        (entry,) = table.entries.values()
        assert entry.backend == "gpu"


def run_vector_transfer(message, tuning=None):
    """One strided GPU-GPU rendezvous; returns (recv bytes, endpoint stats)."""
    rows = message // 4
    vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
    pattern = np.random.default_rng(7).integers(0, 256, rows * 8, np.uint8)
    cluster = Cluster(2)
    world = MpiWorld(cluster, tuning=tuning)

    def program(ctx):
        buf = ctx.cuda.malloc(rows * 8)
        if ctx.rank == 0:
            buf.fill_from(pattern)
            yield from ctx.comm.Send(buf, 1, vec, dest=1)
        else:
            yield from ctx.comm.Recv(buf, 1, vec, source=0)
        return buf

    bufs = world.run(program)
    payload = pack_bytes(bufs[1], vec, 1)
    return payload, world.endpoints[1].stats


class TestTunedTransferSafety:
    """Hypothesis property: ANY chunk from the search space preserves
    transferred-byte counts and the functional payload."""

    @settings(max_examples=8, deadline=None)
    @given(
        chunk=st.sampled_from(SearchSpace().chunk_bytes),
        message=st.sampled_from([4 * KiB, 64 * KiB, 192 * KiB]),
    )
    def test_payload_and_bytes_invariant(self, chunk, message):
        from repro.tune import size_bucket

        baseline, base_stats = run_vector_transfer(message)
        table = vector_table(chunk, bucket=size_bucket(message))
        tuned, tuned_stats = run_vector_transfer(message, tuning=table)
        assert np.array_equal(tuned, baseline)
        assert tuned_stats.bytes_received == base_stats.bytes_received
        assert tuned_stats.msgs_received == base_stats.msgs_received
