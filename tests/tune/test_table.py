"""TuningTable: persistence, validation, lookup resolution, clamping."""

import json

import pytest

from repro.hw import HardwareConfig, KiB
from repro.mpi import BYTE, Datatype
from repro.perf.stats import PERF
from repro.tune import (
    LayoutSignature,
    TuningEntry,
    TuningTable,
    TuningTableError,
    cluster_config_hash,
    tuned_chunk_pref,
)

SIG = LayoutSignature("uniform", width=4, pitch=8)


def make_table(**chunks):
    """Table with one uniform:w4:p8 entry per {bucket: chunk} pair."""
    table = TuningTable("abc123")
    for bucket, chunk in chunks.items():
        table.set(SIG, int(bucket), TuningEntry(
            chunk_bytes=chunk, pipeline_threshold=min(chunk, 64 * KiB),
            tbuf_chunks=64, use_plans=True,
        ))
    return table


class TestClusterHash:
    def test_stable(self):
        a = cluster_config_hash(HardwareConfig.fermi_qdr())
        b = cluster_config_hash(HardwareConfig.fermi_qdr())
        assert a == b and len(a) == 12

    def test_differs_across_models(self):
        assert cluster_config_hash(HardwareConfig.fermi_qdr()) != \
            cluster_config_hash(HardwareConfig.fermi_roce())


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        table.meta["iterations"] = 2
        path = table.save(tmp_path / "t.json")
        loaded = TuningTable.load(path)
        assert loaded.entries == table.entries
        assert loaded.meta == table.meta
        assert loaded.cluster_hash == table.cluster_hash

    def test_save_is_canonical(self, tmp_path):
        a = make_table(**{str(64 * KiB): 16 * KiB, str(1024): 8 * KiB})
        b = make_table(**{str(1024): 8 * KiB, str(64 * KiB): 16 * KiB})
        pa, pb = a.save(tmp_path / "a.json"), b.save(tmp_path / "b.json")
        assert pa.read_bytes() == pb.read_bytes()

    def test_wrong_schema_rejected(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 99, "entries": {}}))
        with pytest.raises(TuningTableError, match="schema"):
            TuningTable.load(p)

    def test_cluster_mismatch_rejected(self, tmp_path):
        p = make_table().save(tmp_path / "t.json")
        with pytest.raises(TuningTableError, match="tuned for cluster"):
            TuningTable.load(p, expect_cluster="fedcba987654")

    def test_malformed_key_rejected(self):
        with pytest.raises(TuningTableError):
            TuningTable.from_json({
                "schema": 1, "cluster": "x",
                "entries": {"nonsense": {
                    "chunk_bytes": 1, "pipeline_threshold": 1,
                    "tbuf_chunks": 1, "use_plans": True,
                }},
            })

    def test_bad_entry_values_rejected(self):
        with pytest.raises(TuningTableError, match="chunk_bytes"):
            TuningEntry(chunk_bytes=0, pipeline_threshold=1,
                        tbuf_chunks=1, use_plans=True)

    def test_not_json_rejected(self, tmp_path):
        p = tmp_path / "garbage.json"
        p.write_text("{not json")
        with pytest.raises(TuningTableError, match="not valid JSON"):
            TuningTable.load(p)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(TuningTableError, match="cannot read"):
            TuningTable.load(tmp_path / "absent.json")


class TestLookup:
    def test_exact_bucket(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        entry = table.lookup(SIG, 64 * KiB)
        assert entry.chunk_bytes == 16 * KiB

    def test_nearest_bucket_same_layout(self):
        table = make_table(**{str(64 * KiB): 16 * KiB, str(4 * KiB): 8 * KiB})
        # 16 KiB has no exact entry; nearest by log distance is 4K... 64K
        # is 2 rungs away, 4K is 2 rungs away -> tie prefers the smaller.
        assert table.lookup(SIG, 16 * KiB).chunk_bytes == 8 * KiB
        # 128 KiB resolves to the 64 KiB neighbour.
        assert table.lookup(SIG, 128 * KiB).chunk_bytes == 16 * KiB

    def test_unknown_layout_misses(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        other = LayoutSignature("uniform", width=8, pitch=32)
        assert table.lookup(other, 64 * KiB) is None

    def test_lru_caches_resolution(self):
        # The second lookup must be served from the resolution LRU:
        # mutating the entry dict behind the cache's back is invisible
        # until ``set`` invalidates it.
        table = make_table(**{str(64 * KiB): 16 * KiB})
        assert table.lookup(SIG, 64 * KiB).chunk_bytes == 16 * KiB
        table.entries.clear()
        assert table.lookup(SIG, 64 * KiB).chunk_bytes == 16 * KiB

    def test_lru_bumps_no_counters(self):
        # Cache mechanics must not report to PERF (they vary with how
        # many endpoints share the table in one process -- not shard
        # partition invariant); accounting lives in tuned_transfer_choice.
        table = make_table(**{str(64 * KiB): 16 * KiB})
        before = PERF.snapshot()
        table.lookup(SIG, 64 * KiB)
        table.lookup(SIG, 64 * KiB)
        table.lookup(SIG, 128 * KiB)  # nearest-bucket resolution
        after = PERF.snapshot()
        for name in ("tune_lru_hit", "tune_nearest_bucket",
                     "tune_lookup_hit", "tune_lookup_miss"):
            assert after.get(name, 0) == before.get(name, 0)

    def test_set_invalidates_lru(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        assert table.lookup(SIG, 64 * KiB).chunk_bytes == 16 * KiB
        table.set(SIG, 64 * KiB, TuningEntry(
            chunk_bytes=32 * KiB, pipeline_threshold=32 * KiB,
            tbuf_chunks=64, use_plans=True,
        ))
        assert table.lookup(SIG, 64 * KiB).chunk_bytes == 32 * KiB

    def test_max_chunk_bytes(self):
        table = make_table(**{str(64 * KiB): 16 * KiB, str(1024): 256 * KiB})
        assert table.max_chunk_bytes() == 256 * KiB
        assert table.max_chunk_bytes(floor=1024 * KiB) == 1024 * KiB
        assert TuningTable("x").max_chunk_bytes(floor=7) == 7


class TestTunedChunkPref:
    def setup_method(self):
        self.vec = Datatype.hvector(1024, 4, 8, BYTE).commit()

    def test_hit(self):
        table = make_table(**{str(4 * KiB): 16 * KiB})
        assert tuned_chunk_pref(table, self.vec, 1, 4 * KiB,
                                cap=64 * KiB) == 16 * KiB

    def test_miss_returns_none(self):
        table = TuningTable("x")
        before = PERF.snapshot().get("tune_lookup_miss", 0)
        assert tuned_chunk_pref(table, self.vec, 1, 4 * KiB,
                                cap=64 * KiB) is None
        assert PERF.snapshot().get("tune_lookup_miss", 0) == before + 1

    def test_clamped_to_cap(self):
        table = make_table(**{str(4 * KiB): 256 * KiB})
        before = PERF.snapshot().get("tune_chunk_clamped", 0)
        assert tuned_chunk_pref(table, self.vec, 1, 4 * KiB,
                                cap=64 * KiB) == 64 * KiB
        assert PERF.snapshot().get("tune_chunk_clamped", 0) == before + 1


def ctx_entry(chunk):
    return TuningEntry(chunk_bytes=chunk, pipeline_threshold=min(chunk, 64 * KiB),
                       tbuf_chunks=64, use_plans=True)


class TestCollectiveContext:
    """Context-qualified entries: key shape, resolution ladder, counters."""

    def test_ctx_exact_preferred_over_ctx_free(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        table.set(SIG, 64 * KiB, ctx_entry(32 * KiB), ctx="coll:f4")
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 64 * KiB, "coll:f4")
        assert entry.chunk_bytes == 32 * KiB
        assert via_ctx and not nearest
        # The ctx-free resolution is untouched by the context row.
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 64 * KiB, "")
        assert entry.chunk_bytes == 16 * KiB
        assert not via_ctx

    def test_ctx_nearest_bucket(self):
        table = TuningTable("abc123")
        table.set(SIG, 64 * KiB, ctx_entry(32 * KiB), ctx="coll:f4")
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 128 * KiB, "coll:f4")
        assert entry.chunk_bytes == 32 * KiB
        assert via_ctx and nearest

    def test_ctx_miss_falls_back_to_ctx_free(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 64 * KiB, "coll:f8")
        assert entry.chunk_bytes == 16 * KiB
        assert not via_ctx and not nearest
        # ...including the ctx-free nearest-bucket rung.
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 128 * KiB, "coll:f8")
        assert entry.chunk_bytes == 16 * KiB
        assert not via_ctx and nearest

    def test_other_ctx_never_leaks(self):
        table = TuningTable("abc123")
        table.set(SIG, 64 * KiB, ctx_entry(32 * KiB), ctx="coll:f4")
        entry, nearest, via_ctx = table.resolve_ctx(SIG, 64 * KiB, "coll:f8")
        assert entry is None
        assert table.resolve(SIG, 64 * KiB) == (None, False)

    def test_resolve_matches_empty_ctx(self):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        assert table.resolve(SIG, 64 * KiB) == \
            table.resolve_ctx(SIG, 64 * KiB, "")[:2]

    def test_roundtrip_with_ctx(self, tmp_path):
        table = make_table(**{str(64 * KiB): 16 * KiB})
        table.set(SIG, 64 * KiB, ctx_entry(32 * KiB), ctx="coll:f4")
        loaded = TuningTable.load(table.save(tmp_path / "t.json"))
        assert loaded.entries == table.entries
        assert loaded.resolve_ctx(SIG, 64 * KiB, "coll:f4")[0].chunk_bytes \
            == 32 * KiB

    def test_from_json_rejects_unknown_ctx(self):
        with pytest.raises(TuningTableError, match="context"):
            TuningTable.from_json({
                "schema": 1, "cluster": "x",
                "entries": {"uniform:w4:p8|s65536|weird:f4": {
                    "chunk_bytes": 1024, "pipeline_threshold": 1024,
                    "tbuf_chunks": 1, "use_plans": True,
                }},
            })

    def test_coll_tuned_hit_counter(self):
        vec = Datatype.hvector(1024, 4, 8, BYTE).commit()
        table = TuningTable("abc123")
        table.set(vec.layout_signature(1), 4 * KiB, ctx_entry(16 * KiB),
                  ctx="coll:f4")
        before = PERF.snapshot().get("coll_tuned_hit", 0)
        assert tuned_chunk_pref(table, vec, 1, 4 * KiB, cap=64 * KiB,
                                ctx="coll:f4") == 16 * KiB
        assert PERF.snapshot().get("coll_tuned_hit", 0) == before + 1
        # A ctx-free resolution of the same shape must not bump it.
        table.set(vec.layout_signature(1), 4 * KiB, ctx_entry(16 * KiB))
        assert tuned_chunk_pref(table, vec, 1, 4 * KiB,
                                cap=64 * KiB) == 16 * KiB
        assert PERF.snapshot().get("coll_tuned_hit", 0) == before + 1
