"""Unit tests for the core-package building blocks."""

import numpy as np
import pytest

from repro.core import (
    GpuNcConfig,
    LayoutPlan,
    TbufPool,
    buffer_location,
    gpu_pack_cost,
    is_device_ptr,
    is_host_ptr,
)
from repro.cuda import CudaContext
from repro.hw import Cluster, CopyKind
from repro.mpi import BYTE, FLOAT, Datatype
from repro.mpi.endpoint import VbufPool


@pytest.fixture
def ctx():
    cluster = Cluster(1)
    return CudaContext(cluster.env, cluster.cfg, cluster.nodes[0])


class TestConfig:
    def test_defaults_valid(self):
        cfg = GpuNcConfig()
        assert cfg.chunk_bytes == 64 * 1024
        assert cfg.use_gpu_offload

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_bytes": 0},
            {"pipeline_threshold": -1},
            {"tbuf_chunks": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            GpuNcConfig(**kwargs)

    def test_with_overrides(self):
        with pytest.warns(UserWarning, match="pipeline_threshold"):
            cfg = GpuNcConfig().with_overrides(chunk_bytes=4096)
        assert cfg.chunk_bytes == 4096

    def test_threshold_above_chunk_warns(self):
        with pytest.warns(UserWarning, match="exceeds chunk_bytes"):
            GpuNcConfig(chunk_bytes=8 * 1024, pipeline_threshold=64 * 1024)

    def test_threshold_at_or_below_chunk_is_silent(self):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            GpuNcConfig(chunk_bytes=64 * 1024, pipeline_threshold=64 * 1024)
            GpuNcConfig(chunk_bytes=128 * 1024, pipeline_threshold=64 * 1024)

    def test_with_overrides_unknown_key(self):
        with pytest.raises(ValueError, match="unknown GpuNcConfig option"):
            GpuNcConfig().with_overrides(chunk_size=4096)

    def test_recovery_with_overrides_unknown_key(self):
        from repro.core import RecoveryConfig

        with pytest.raises(ValueError, match="unknown RecoveryConfig option"):
            RecoveryConfig().with_overrides(rmda_timeout=1e-3)


class TestDetection:
    def test_device_pointer(self, ctx):
        p = ctx.malloc(64)
        assert is_device_ptr(p) and not is_host_ptr(p)
        assert buffer_location(p) == "device"

    def test_host_pointer(self, ctx):
        p = ctx.malloc_host(64)
        assert is_host_ptr(p) and not is_device_ptr(p)
        assert buffer_location(p) == "host"


class TestLayoutPlan:
    def test_contiguous_type(self):
        plan = LayoutPlan.of(Datatype.contiguous(16, FLOAT), 1)
        assert plan.kind == "contig" and plan.base_offset == 0
        assert plan.total_bytes == 64

    def test_vector_is_strided(self):
        plan = LayoutPlan.of(Datatype.vector(8, 1, 2, FLOAT), 1)
        assert plan.kind == "strided"

    def test_single_block_vector_is_contig(self):
        """vector(1, n, s) coalesces to one run -> contig plan."""
        plan = LayoutPlan.of(Datatype.vector(1, 8, 16, FLOAT), 1)
        assert plan.kind == "contig"

    def test_offset_run_detected(self):
        t = Datatype.hindexed([8], [32], BYTE)
        plan = LayoutPlan.of(t, 1)
        assert plan.kind == "contig" and plan.base_offset == 32

    def test_zero_size(self):
        plan = LayoutPlan.of(FLOAT, 0)
        assert plan.total_bytes == 0


class TestGpuPackCost:
    def test_uniform_uses_2d_copy_law(self, ctx):
        t = Datatype.vector(1024, 1, 2, FLOAT)
        cost = gpu_pack_cost(ctx, t, 1, 0, t.size)
        expect = ctx.cfg.memcpy2d_time(CopyKind.D2D, 4, 1024, 8, 4)
        assert cost == pytest.approx(expect)

    def test_irregular_uses_gather_law(self, ctx):
        t = Datatype.indexed([1, 2, 1], [0, 3, 9], FLOAT)
        cost = gpu_pack_cost(ctx, t, 1, 0, t.size)
        segs = t.segments
        expect = ctx.cfg.device_gather_time(segs.count, segs.total_bytes)
        assert cost == pytest.approx(expect)

    def test_subrange_cheaper_than_whole(self, ctx):
        t = Datatype.vector(4096, 1, 2, FLOAT)
        whole = gpu_pack_cost(ctx, t, 1, 0, t.size)
        half = gpu_pack_cost(ctx, t, 1, 0, t.size // 2)
        assert half < whole


class TestPools:
    def test_tbuf_pool_cycle(self, ctx):
        pool = TbufPool(ctx, chunk_bytes=1024, chunks=2)
        env = ctx.env

        def proc():
            a = yield pool.acquire()
            b = yield pool.acquire()
            assert pool.available == 0
            pool.release(a)
            c = yield pool.acquire()
            assert c is a  # FIFO recycling
            pool.release(b)
            pool.release(c)

        env.run(env.process(proc()))
        assert pool.available == 2

    def test_tbuf_wrong_size_release_rejected(self, ctx):
        pool = TbufPool(ctx, chunk_bytes=1024, chunks=1)
        foreign = ctx.malloc(512)
        with pytest.raises(ValueError):
            pool.release(foreign)

    def test_tbuf_validation(self, ctx):
        with pytest.raises(ValueError):
            TbufPool(ctx, chunk_bytes=0, chunks=1)

    def test_vbuf_pool_blocks_when_empty(self):
        cluster = Cluster(1)
        pool = VbufPool(cluster.env, cluster.nodes[0], 256, 1)
        got = []

        def consumer():
            a = yield pool.acquire()
            got.append(("first", cluster.env.now))
            b = yield pool.acquire()
            got.append(("second", cluster.env.now))
            pool.release(a)
            pool.release(b)

        def releaser(buf_holder):
            yield cluster.env.timeout(1.0)
            # The first consumer released nothing yet; emulate an external
            # release by draining through a second acquire path is complex;
            # instead verify blocking via timing below.

        # Simpler: acquire once, hold; second acquire must wait until we
        # release at t=1.
        def holder():
            a = yield pool.acquire()
            yield cluster.env.timeout(1.0)
            pool.release(a)

        def waiter():
            b = yield pool.acquire()
            got.append(("waited", cluster.env.now))
            pool.release(b)

        cluster.env.process(holder())
        cluster.env.process(waiter())
        cluster.env.run()
        assert got == [("waited", 1.0)]

    def test_vbuf_wrong_size_release_rejected(self):
        from repro.mpi import MpiError

        cluster = Cluster(1)
        pool = VbufPool(cluster.env, cluster.nodes[0], 256, 1)
        foreign = cluster.nodes[0].malloc_host(128)
        with pytest.raises(MpiError):
            pool.release(foreign)
