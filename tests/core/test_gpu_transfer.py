"""End-to-end tests of the MV2-GPU-NC transfer engine: every combination of
host/device source and destination, contiguous and strided, small and
pipelined, with bit-exact data checks."""

import numpy as np
import pytest

from repro.core import GpuNcConfig
from repro.hw import Cluster
from repro.mpi import BYTE, FLOAT, Datatype, MpiError, MpiWorld, run_world, wait_all


def fill_pattern(n, seed=0):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def make_vector(rows, width_bytes=4, gap_bytes=4):
    """A rows x width strided byte vector with a gap after each row."""
    return Datatype.hvector(rows, width_bytes, width_bytes + gap_bytes, BYTE).commit()


def full_span(rows, width_bytes=4, gap_bytes=4):
    """Bytes of a buffer holding ``rows`` full pitches (incl. final gap)."""
    return rows * (width_bytes + gap_bytes)


class TestDeviceToDevice:
    @pytest.mark.parametrize("rows", [1, 16, 1024, 1 << 15])
    def test_strided_vector_roundtrip(self, rows):
        vec = make_vector(rows)
        span = full_span(rows)

        def program(ctx):
            buf = ctx.cuda.malloc(span)
            if ctx.rank == 0:
                pat = fill_pattern(span, seed=rows)
                buf.fill_from(pat)
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return pat.reshape(rows, 8)[:, :4].copy()
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                got = buf.to_array(np.uint8).reshape(rows, 8)
                assert (got[:, 4:] == 0).all()  # gaps untouched
                return got[:, :4].copy()

        sent, got = run_world(program, 2)
        assert np.array_equal(sent, got)

    def test_contiguous_device_transfer(self):
        """The pre-existing MVAPICH2-GPU path: contiguous device buffers."""
        n = 1 << 20

        def program(ctx):
            buf = ctx.cuda.malloc(n)
            if ctx.rank == 0:
                buf.fill_from(fill_pattern(n, 1))
                yield from ctx.comm.Send(buf, n, BYTE, dest=1)
                return buf.to_array(np.uint8)
            else:
                yield from ctx.comm.Recv(buf, n, BYTE, source=0)
                return buf.to_array(np.uint8)

        sent, got = run_world(program, 2)
        assert np.array_equal(sent, got)

    def test_small_device_message_single_chunk(self):
        def program(ctx):
            vec = make_vector(8)
            buf = ctx.cuda.malloc(full_span(8))
            if ctx.rank == 0:
                buf.fill_from(fill_pattern(full_span(8), 5))
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                st = yield from ctx.comm.Recv(buf, 1, vec, source=0)
                assert st.count_bytes == 32

        run_world(program, 2)

    def test_zero_size_device_send(self):
        def program(ctx):
            buf = ctx.cuda.malloc(16)
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 0, FLOAT, dest=1)
            else:
                st = yield from ctx.comm.Recv(buf, 0, FLOAT, source=0)
                assert st.count_bytes == 0

        run_world(program, 2)

    def test_indexed_datatype_gather_kernel_path(self):
        """Non-uniform layout exercises the general gather-kernel branch."""
        t = Datatype.indexed([3, 1, 2, 5], [0, 5, 9, 20], BYTE).commit()
        span = t.span_for_count(1)

        def program(ctx):
            buf = ctx.cuda.malloc(span)
            if ctx.rank == 0:
                buf.fill_from(fill_pattern(span, 9))
                yield from ctx.comm.Send(buf, 1, t, dest=1)
                return buf.to_array(np.uint8)
            else:
                yield from ctx.comm.Recv(buf, 1, t, source=0)
                return buf.to_array(np.uint8)

        sent, got = run_world(program, 2)
        segs = t.segments
        for off, ln in zip(segs.offsets.tolist(), segs.lengths.tolist()):
            assert np.array_equal(sent[off : off + ln], got[off : off + ln])

    def test_subarray_halo_exchange_type(self):
        """An east halo column expressed as a subarray, like Stencil2D."""
        n = 64
        col = Datatype.subarray([n, n], [n, 1], [0, n - 1], FLOAT).commit()

        def program(ctx):
            buf = ctx.cuda.malloc(n * n * 4)
            if ctx.rank == 0:
                data = np.arange(n * n, dtype=np.float32).reshape(n, n)
                buf.fill_from(data)
                yield from ctx.comm.Send(buf, 1, col, dest=1)
                return data[:, -1].copy()
            else:
                yield from ctx.comm.Recv(buf, 1, col, source=0)
                return buf.to_array(np.float32, (n, n))[:, -1].copy()

        sent_col, got_col = run_world(program, 2)
        assert np.array_equal(sent_col, got_col)


class TestMixedLocations:
    def test_device_to_host(self):
        rows = 4096
        vec = make_vector(rows)

        def program(ctx):
            if ctx.rank == 0:
                buf = ctx.cuda.malloc(full_span(rows))
                buf.fill_from(fill_pattern(full_span(rows), 2))
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()
            else:
                buf = ctx.node.malloc_host(rows * 4)
                yield from ctx.comm.Recv(buf, rows * 4, BYTE, source=0)
                return buf.to_array(np.uint8).reshape(rows, 4)

        sent, got = run_world(program, 2)
        assert np.array_equal(sent, got)

    def test_host_to_device_large(self):
        n = 1 << 20

        def program(ctx):
            if ctx.rank == 0:
                buf = ctx.node.malloc_host(n)
                buf.view()[:] = fill_pattern(n, 3)
                yield from ctx.comm.Send(buf, n, BYTE, dest=1)
                return buf.to_array(np.uint8)
            else:
                buf = ctx.cuda.malloc(n)
                yield from ctx.comm.Recv(buf, n, BYTE, source=0)
                return buf.to_array(np.uint8)

        sent, got = run_world(program, 2)
        assert np.array_equal(sent, got)

    def test_host_to_device_strided_recv(self):
        rows = 2048
        vec = make_vector(rows)

        def program(ctx):
            if ctx.rank == 0:
                buf = ctx.node.malloc_host(rows * 4)
                buf.view()[:] = fill_pattern(rows * 4, 4)
                yield from ctx.comm.Send(buf, rows * 4, BYTE, dest=1)
                return buf.to_array(np.uint8).reshape(rows, 4)
            else:
                buf = ctx.cuda.malloc(full_span(rows))
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()

        sent, got = run_world(program, 2)
        assert np.array_equal(sent, got)

    def test_eager_host_to_device(self):
        """Small host send landing in a strided device buffer."""
        rows = 16
        vec = make_vector(rows)

        def program(ctx):
            if ctx.rank == 0:
                buf = ctx.node.malloc_host(rows * 4)
                buf.view()[:] = np.arange(rows * 4, dtype=np.uint8)
                yield from ctx.comm.Send(buf, rows * 4, BYTE, dest=1)
            else:
                buf = ctx.cuda.malloc(full_span(rows))
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                got = buf.to_array(np.uint8).reshape(rows, 8)
                assert np.array_equal(
                    got[:, :4].reshape(-1), np.arange(rows * 4, dtype=np.uint8)
                )

        run_world(program, 2)


class TestPipelineBehaviour:
    def test_pipelined_faster_than_sum_of_stages(self):
        """The whole point: chunked overlap beats the serial sum."""
        rows = 1 << 18  # 1 MB packed
        vec = make_vector(rows)

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                t0 = ctx.now
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return ctx.now - t0
            else:
                t0 = ctx.now
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                return ctx.now - t0

        _, total = run_world(program, 2)
        cfg = Cluster(1).cfg
        n = rows * 4
        # Serial lower-bound estimate of the five unpipelined stages.
        pack = cfg.memcpy2d_time(__import__("repro.hw", fromlist=["CopyKind"]).CopyKind.D2D, 4, rows, 8, 4)
        d2h = cfg.memcpy_time(__import__("repro.hw", fromlist=["CopyKind"]).CopyKind.D2H, n)
        net = cfg.rdma_time(n)
        serial = 2 * pack + 2 * d2h + net
        assert total < serial * 0.75

    def test_chunk_count_respects_chunk_bytes(self):
        """With 64 KB chunks a 1 MB message uses 16 chunks; the sender's
        FIN count must match."""
        rows = 1 << 18
        vec = make_vector(rows)
        fins = []

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                orig = ctx.endpoint.handlers["fin"]

                def counting(ep, payload):
                    fins.append(payload["chunk"])
                    orig(ep, payload)

                ctx.endpoint.handlers["fin"] = counting
                yield from ctx.comm.Recv(buf, 1, vec, source=0)

        run_world(program, 2)
        assert sorted(fins) == list(range(16))

    def test_vbuf_pool_drains_and_refills(self):
        def program(ctx):
            vec = make_vector(1 << 15)  # 128 KB packed -> 2 chunks
            buf = ctx.cuda.malloc(full_span(1 << 15))
            pools = (ctx.endpoint.send_vbufs, ctx.endpoint.recv_vbufs)
            before = tuple(p.available for p in pools)
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
            yield ctx.env.timeout(1e-3)
            assert tuple(p.available for p in pools) == before

        run_world(program, 2)

    def test_message_larger_than_pool_flows_through_windowed_grants(self):
        """A message needing more staging chunks than the vbuf pool holds
        completes correctly: the receiver grants landing buffers in windows
        and recycles them as chunks drain."""
        rows = 1 << 16  # 256 KB packed -> 4 chunks; pool holds only 2
        vec = make_vector(rows)

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                buf.fill_from(fill_pattern(full_span(rows), 21))
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()

        cluster = Cluster(2)
        world = MpiWorld(cluster, vbuf_count=2)
        sent, got = world.run(program)
        assert np.array_equal(sent, got)

    def test_windowed_grants_arrive_incrementally(self):
        """With a small rendezvous window the sender receives several CTS
        messages rather than one."""
        from repro.hw import HardwareConfig

        rows = 1 << 17  # 512 KB -> 8 chunks
        vec = make_vector(rows)
        cts_batches = []

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                orig = ctx.endpoint.handlers["cts"]

                def counting(ep, payload):
                    cts_batches.append(len(payload["chunks"]))
                    orig(ep, payload)

                ctx.endpoint.handlers["cts"] = counting
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)

        cfg = HardwareConfig(rendezvous_window=2)
        cluster = Cluster(2, cfg=cfg)
        MpiWorld(cluster).run(program)
        assert sum(cts_batches) == 8
        assert cts_batches[0] == 2  # initial window
        assert len(cts_batches) > 1  # incremental top-ups followed

    def test_no_offload_fallback_correct(self):
        """The ablation path (no GPU offload) still moves data correctly."""
        rows = 1 << 14
        vec = make_vector(rows)

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                buf.fill_from(fill_pattern(full_span(rows), 6))
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                return buf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy()

        cluster = Cluster(2)
        world = MpiWorld(
            cluster, gpu_config=GpuNcConfig(use_gpu_offload=False)
        )
        sent, got = world.run(program)
        assert np.array_equal(sent, got)

    def test_offload_beats_no_offload(self):
        """Ablation: GPU offload must be significantly faster."""
        rows = 1 << 17
        vec = make_vector(rows)

        def program(ctx):
            buf = ctx.cuda.malloc(full_span(rows))
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
                return ctx.now
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
                return ctx.now

        def run_with(offload):
            cluster = Cluster(2)
            world = MpiWorld(
                cluster, gpu_config=GpuNcConfig(use_gpu_offload=offload)
            )
            return max(world.run(program))

        assert run_with(True) < run_with(False) / 3

    def test_both_directions_concurrently(self):
        """Full-duplex exchange (the stencil pattern) stays correct."""
        rows = 1 << 14
        vec = make_vector(rows)

        def program(ctx):
            sbuf = ctx.cuda.malloc(full_span(rows))
            rbuf = ctx.cuda.malloc(full_span(rows))
            pat = fill_pattern(full_span(rows), 100 + ctx.rank)
            sbuf.fill_from(pat)
            other = 1 - ctx.rank
            rr = ctx.comm.Irecv(rbuf, 1, vec, source=other, tag=1)
            sr = ctx.comm.Isend(sbuf, 1, vec, dest=other, tag=1)
            yield from wait_all([sr, rr])
            return (
                pat.reshape(rows, 8)[:, :4].copy(),
                rbuf.to_array(np.uint8).reshape(rows, 8)[:, :4].copy(),
            )

        (sent0, got0), (sent1, got1) = run_world(program, 2)
        assert np.array_equal(sent0, got1)
        assert np.array_equal(sent1, got0)
