"""Compiled transfer plans: replay must be byte- and trace-identical.

Three layers of guarantee:

* property test -- the plan's fused gather/scatter primitives produce
  exactly the bytes of the reference chunked pack path
  (``pack_range_bytes``/``unpack_range_from``) for random datatypes and
  random chunk sizes;
* end-to-end -- a pipelined MPI transfer delivers identical bytes with
  plans on and off, for every src/dst host/device combination;
* trace equality -- the Figure 3 pipelined transfer produces the *same
  simulated schedule* (every traced interval, and the final clock) with
  plans + event pooling enabled as with both disabled. The optimizations
  are wall-clock only.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GpuNcConfig
from repro.core.plan import TransferPlan
from repro.hw import Cluster
from repro.hw.memory import Arena
from repro.mpi import BYTE, Datatype, MpiWorld
from repro.mpi.pack import pack_bytes, pack_range_bytes, unpack_range_from
from repro.sim import Environment


# -- plan primitives vs the reference chunked pack path -------------------------

@st.composite
def plan_datatype(draw):
    """A committed datatype: contiguous or strided, modest footprint."""
    base = Datatype.named(np.uint8)
    kind = draw(st.sampled_from(
        ["contiguous", "vector", "hvector", "indexed", "struct", "subarray"]
    ))
    if kind == "contiguous":
        return Datatype.contiguous(draw(st.integers(1, 512)), base).commit()
    if kind == "vector":
        count = draw(st.integers(1, 200))
        bl = draw(st.integers(1, 8))
        stride = draw(st.integers(bl, bl + 16))
        return Datatype.vector(count, bl, stride, base).commit()
    if kind == "hvector":
        count = draw(st.integers(1, 150))
        bl = draw(st.integers(1, 16))
        stride = draw(st.integers(bl, bl + 48))
        return Datatype.hvector(count, bl, stride, base).commit()
    if kind == "indexed":
        n = draw(st.integers(1, 16))
        bls = draw(st.lists(st.integers(1, 8), min_size=n, max_size=n))
        displs, cur = [], 0
        for bl in bls:
            cur += draw(st.integers(0, 12))
            displs.append(cur)
            cur += bl
        return Datatype.indexed(bls, displs, base).commit()
    if kind == "struct":
        n = draw(st.integers(1, 6))
        bls = draw(st.lists(st.integers(1, 8), min_size=n, max_size=n))
        displs, cur = [], 0
        for bl in bls:
            cur += draw(st.integers(0, 12))
            displs.append(cur)
            cur += bl
        return Datatype.struct(bls, displs, [base] * n).commit()
    rows = draw(st.integers(2, 32))
    cols = draw(st.integers(2, 32))
    sub_r = draw(st.integers(1, rows))
    sub_c = draw(st.integers(1, cols))
    start_r = draw(st.integers(0, rows - sub_r))
    start_c = draw(st.integers(0, cols - sub_c))
    return Datatype.subarray(
        [rows, cols], [sub_r, sub_c], [start_r, start_c], base
    ).commit()


@settings(max_examples=60, deadline=None)
@given(plan_datatype(), st.integers(1, 3), st.data())
def test_plan_gather_scatter_matches_reference(dtype, count, data):
    """Every chunk's fused gather/scatter equals the legacy two-hop path."""
    total = dtype.size * count
    chunk_bytes = data.draw(st.integers(1, max(1, total)), label="chunk_bytes")
    plan = TransferPlan.compile(dtype, count, chunk_bytes, "device", "host")
    assert plan.total == total
    assert plan.nchunks == len(plan.chunks)
    assert plan.chunks[-1].hi == total

    span = max(dtype.span_for_count(count), 1)
    room = -(-span // 256) * 256  # allocations are 256-byte aligned
    rng = np.random.default_rng(total * 31 + chunk_bytes)
    src_arena = Arena(room, "host", "plan-src")
    src = src_arena.alloc(span)
    src.view()[:] = rng.integers(0, 256, span, dtype=np.uint8)

    dst_arena = Arena(room, "host", "plan-dst")
    ref_arena = Arena(room, "host", "plan-ref")
    dst = dst_arena.alloc(span)
    ref = ref_arena.alloc(span)

    scratch = np.empty(chunk_bytes, dtype=np.uint8)
    for cp in plan.chunks:
        expected = pack_range_bytes(src, dtype, count, cp.lo, cp.hi)
        cp.gather_into(src, scratch)
        assert np.array_equal(scratch[: cp.nbytes], expected)
        # Scatter the packed chunk both ways and compare the *whole*
        # arena afterwards: the fused path must write exactly the bytes
        # the reference writes, and no others.
        cp.scatter_from(scratch, dst)
        staged_arena = Arena(-(-max(cp.nbytes, 1) // 256) * 256,
                             "host", "plan-stage")
        staged = staged_arena.alloc(max(cp.nbytes, 1))
        staged.view()[: cp.nbytes] = expected
        unpack_range_from(staged.sub(0, cp.nbytes), dtype, count, ref,
                          cp.lo, cp.hi)
    assert np.array_equal(dst_arena.raw, ref_arena.raw)


def test_plan_cache_reuses_compiled_plans():
    vec = Datatype.hvector(64, 4, 8, BYTE).commit()
    p1 = vec.plan_for(2, 128, "device", "wire")
    p2 = vec.plan_for(2, 128, "device", "wire")
    assert p1 is p2
    # A different chunk size is a different plan (the _chunking fix keys
    # the cache on the granted chunk size).
    p3 = vec.plan_for(2, 64, "device", "wire")
    assert p3 is not p1 and p3.nchunks == 2 * p1.nchunks
    vec.invalidate_segment_cache()
    assert vec.plan_for(2, 128, "device", "wire") is not p1


# -- end-to-end byte identity, plans on vs off ----------------------------------

ROWS = 1 << 13  # 32 KiB packed / 64 KiB span: rendezvous + pipelined


def _transfer(use_plans: bool, src_dev: bool, dst_dev: bool) -> np.ndarray:
    vec = Datatype.hvector(ROWS, 4, 8, BYTE).commit()
    span = ROWS * 8
    rng = np.random.default_rng(20110926)
    payload = rng.integers(0, 256, span, dtype=np.uint8)

    def program(ctx):
        dev = src_dev if ctx.rank == 0 else dst_dev
        buf = ctx.cuda.malloc(span) if dev else ctx.node.malloc_host(span)
        if ctx.rank == 0:
            buf.view()[:] = payload
            yield from ctx.comm.Send(buf, 1, vec, dest=1)
        else:
            yield from ctx.comm.Recv(buf, 1, vec, source=0)
            return pack_bytes(buf, vec, 1)

    world = MpiWorld(Cluster(2), gpu_config=GpuNcConfig(use_plans=use_plans))
    return world.run(program)[1]


@pytest.mark.parametrize("src_dev", [False, True])
@pytest.mark.parametrize("dst_dev", [False, True])
def test_transfer_bytes_identical_plans_on_off(src_dev, dst_dev):
    with_plans = _transfer(True, src_dev, dst_dev)
    without = _transfer(False, src_dev, dst_dev)
    assert np.array_equal(with_plans, without)


# -- Figure 3 trace equality: optimizations are wall-clock only -----------------

def _fig3_trace(use_plans: bool, event_pooling: bool, recovery=None):
    """One pipelined strided transfer; returns (intervals, final clock)."""
    rows = 1 << 14
    vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
    env = Environment(event_pooling=event_pooling)
    cluster = Cluster(2, env=env)

    def program(ctx):
        buf = ctx.cuda.malloc(rows * 8)
        if ctx.rank == 0:
            buf.view()[:] = 7
            yield from ctx.comm.Send(buf, 1, vec, dest=1)
        else:
            yield from ctx.comm.Recv(buf, 1, vec, source=0)
            return pack_bytes(buf, vec, 1)

    world = MpiWorld(cluster, gpu_config=GpuNcConfig(use_plans=use_plans),
                     recovery=recovery)
    delivered = world.run(program)[1]
    assert np.all(delivered == 7)
    return cluster.tracer.intervals, env.now


def test_fig3_trace_identical_with_and_without_optimizations():
    """Plan replay + event pooling change nothing the simulation observes.

    Every traced interval (start, end, engine, label) and the final
    simulated clock must be identical whether the optimizations are on
    (the default) or off.
    """
    fast_ivs, fast_now = _fig3_trace(use_plans=True, event_pooling=True)
    ref_ivs, ref_now = _fig3_trace(use_plans=False, event_pooling=False)
    assert fast_now == ref_now
    assert len(fast_ivs) == len(ref_ivs)
    assert fast_ivs == ref_ivs


# -- recovery layer armed but fault-free: schedule must be untouched -------------

def test_fig3_trace_identical_with_recovery_armed():
    """Arming the retry/watchdog layer on a clean fabric is schedule-neutral.

    The recovery machinery adds pending timeouts and bookkeeping but must
    not move a single traced interval or the final clock: the paper-figure
    runs (faults disabled) stay bit-identical whether or not the layer is
    armed.
    """
    from repro.core.config import RecoveryConfig

    armed_ivs, armed_now = _fig3_trace(
        use_plans=True, event_pooling=True, recovery=RecoveryConfig()
    )
    ref_ivs, ref_now = _fig3_trace(use_plans=True, event_pooling=True)
    assert armed_now == ref_now
    assert armed_ivs == ref_ivs


def test_fig5_host_rendezvous_trace_identical_with_recovery_armed():
    """Same neutrality for the host rendezvous path (fig5 baselines)."""
    from repro.core.config import RecoveryConfig

    def trace(recovery):
        n = 1 << 16  # above eager threshold: staged host rendezvous
        env = Environment()
        cluster = Cluster(2, env=env)

        def program(ctx):
            buf = ctx.node.malloc_host(n)
            if ctx.rank == 0:
                buf.view()[:] = 3
                yield from ctx.comm.Send(buf, n, BYTE, dest=1)
            else:
                yield from ctx.comm.Recv(buf, n, BYTE, source=0)
                return buf.view().copy()

        world = MpiWorld(cluster, recovery=recovery)
        delivered = world.run(program)[1]
        assert np.all(delivered == 3)
        return cluster.tracer.intervals, env.now

    armed_ivs, armed_now = trace(RecoveryConfig())
    ref_ivs, ref_now = trace(None)
    assert armed_now == ref_now
    assert armed_ivs == ref_ivs
