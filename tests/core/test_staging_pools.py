"""Property tests for the staging pools (tbuf device chunks, host vbufs).

The pools are the pipeline's flow control; their conservation invariant
(``available + in_use == count``) and ownership checks (foreign buffers,
double releases and never-issued chunks are rejected) are what keep a
recovery-layer retry from silently inflating a pool and breaking back-
pressure.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.staging import TbufPool
from repro.cuda.runtime import CudaContext
from repro.hw import Cluster
from repro.mpi.endpoint import VbufPool
from repro.mpi.status import MpiError

CHUNK = 4096
COUNT = 4


def _tbuf_pool(cluster):
    node = cluster.nodes[0]
    cuda = CudaContext(cluster.env, cluster.cfg, node, gpu=node.gpus[0],
                       tracer=cluster.tracer, name="cuda:test")
    return TbufPool(cuda, CHUNK, COUNT)


def _vbuf_pool(cluster):
    return VbufPool(cluster.env, cluster.nodes[0], CHUNK, COUNT)


def _drive(cluster, pool, ops):
    """Replay an acquire/release script; check conservation at each step."""
    held = []

    def program():
        for op in ops:
            if op == "acquire" and pool.available > 0:
                buf = yield pool.acquire()
                held.append(buf)
            elif op == "release" and held:
                pool.release(held.pop())
            assert pool.available + len(held) == pool.count
        return None
        yield  # pragma: no cover

    cluster.env.run(cluster.env.process(program()))
    return held


class TestConservationInvariant:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["acquire", "release"]), max_size=40))
    def test_tbuf_available_plus_in_use_is_count(self, ops):
        cluster = Cluster(1)
        pool = _tbuf_pool(cluster)
        held = _drive(cluster, pool, ops)
        assert pool.available + pool.in_use == pool.count
        assert pool.in_use == len(held)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.sampled_from(["acquire", "release"]), max_size=40))
    def test_vbuf_available_plus_held_is_count(self, ops):
        cluster = Cluster(1)
        pool = _vbuf_pool(cluster)
        held = _drive(cluster, pool, ops)
        assert pool.available + len(held) == pool.count


@pytest.mark.parametrize("make,exc", [
    (_tbuf_pool, ValueError),
    (_vbuf_pool, MpiError),
], ids=["tbuf", "vbuf"])
class TestOwnershipValidation:
    def _one(self, cluster, pool):
        """Acquire a single buffer synchronously."""
        def program():
            buf = yield pool.acquire()
            return buf
        return cluster.env.run(cluster.env.process(program()))

    def test_foreign_buffer_of_matching_size_rejected(self, make, exc):
        cluster = Cluster(1)
        pool, other = make(cluster), make(cluster)
        stranger = self._one(cluster, other)
        with pytest.raises(exc):
            pool.release(stranger)

    def test_double_release_rejected(self, make, exc):
        cluster = Cluster(1)
        pool = make(cluster)
        buf = self._one(cluster, pool)
        pool.release(buf)
        with pytest.raises(exc, match="double release"):
            pool.release(buf)

    def test_never_issued_chunk_rejected(self, make, exc):
        cluster = Cluster(1)
        pool = make(cluster)
        ghost = pool._backing.sub((pool.count - 1) * CHUNK, CHUNK)
        with pytest.raises(exc, match="never handed out"):
            pool.release(ghost)

    def test_misaligned_slice_rejected(self, make, exc):
        cluster = Cluster(1)
        pool = make(cluster)
        buf = self._one(cluster, pool)
        crooked = pool._backing.sub(buf.offset - pool._backing.offset + 1,
                                    CHUNK - 1)
        with pytest.raises(exc):
            pool.release(crooked)
        pool.release(buf)  # the real chunk still goes back fine
