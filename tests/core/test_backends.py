"""Transfer backends: byte equality, chooser guidelines, counters, clamps."""

from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bench.vector_latency import mv2_gpu_nc_latency
from repro.core import GpuNcConfig
from repro.core.backends import (
    BACKENDS,
    GUIDELINE_TOLERANCE,
    NIC_DESC_COST,
    NIC_MAX_DESCRIPTORS,
    NIC_RING_OVERHEAD,
    guideline_backend,
    modeled_chunk_cost,
    nic_offload_cost,
)
from repro.hw import Cluster, HardwareConfig, KiB, MiB
from repro.mpi import BYTE, Datatype, MpiWorld
from repro.mpi.pack import pack_bytes
from repro.perf.stats import PERF, PerfStats
from repro.tune import TuningEntry, TuningTable, size_bucket

BACKEND_NAMES = tuple(sorted(BACKENDS))
HW = HardwareConfig.fermi_qdr()


def run_transfer(dtype, count, span, backend=None, tuning=None, shards=1,
                 seed=11):
    """One 2-rank device-device transfer; returns (packed bytes, tracer)."""
    pattern = np.random.default_rng(seed).integers(0, 256, span, np.uint8)
    cluster = Cluster(2, shards=shards)
    gpu_config = GpuNcConfig(backend=backend) if backend else None
    world = MpiWorld(cluster, gpu_config=gpu_config, tuning=tuning)

    def program(ctx):
        buf = ctx.cuda.malloc(span)
        if ctx.rank == 0:
            buf.fill_from(pattern)
            yield from ctx.comm.Send(buf, count, dtype, dest=1)
        else:
            yield from ctx.comm.Recv(buf, count, dtype, source=0)
        return buf

    bufs = world.run(program)
    return pack_bytes(bufs[1], dtype, count), cluster.tracer


@st.composite
def zoo_datatype(draw):
    """A committed strided/irregular datatype with a modest footprint."""
    kind = draw(st.sampled_from(["vector", "hvector", "indexed"]))
    if kind == "vector":
        count = draw(st.integers(2, 200))
        bl = draw(st.integers(1, 8))
        stride = draw(st.integers(bl + 1, bl + 16))
        return Datatype.vector(count, bl, stride, BYTE).commit()
    if kind == "hvector":
        count = draw(st.integers(2, 150))
        bl = draw(st.integers(1, 64))
        stride = draw(st.integers(bl + 1, bl + 128))
        return Datatype.hvector(count, bl, stride, BYTE).commit()
    n = draw(st.integers(2, 24))
    bls = draw(st.lists(st.integers(1, 16), min_size=n, max_size=n))
    displs, cur = [], 0
    for bl in bls:
        cur += draw(st.integers(1, 24))
        displs.append(cur)
        cur += bl
    return Datatype.indexed(bls, displs, BYTE).commit()


class TestByteEquality:
    """Every backend must deliver byte-for-byte identical receive buffers."""

    @settings(max_examples=8, deadline=None)
    @given(dtype=zoo_datatype(), count=st.integers(1, 2))
    def test_backends_identical_bytes(self, dtype, count):
        span = max(dtype.span_for_count(count), 1)
        got = {
            b: run_transfer(dtype, count, span, backend=b)[0]
            for b in BACKEND_NAMES
        }
        for b in BACKEND_NAMES[1:]:
            assert np.array_equal(got[b], got[BACKEND_NAMES[0]]), (
                f"backend {b} delivered different bytes than "
                f"{BACKEND_NAMES[0]} for {dtype}"
            )

    def test_wide_segments_identical_bytes(self):
        # The NIC backend's sweet spot (few wide segments) must still be
        # byte-exact against the pipeline and host paths.
        vec = Datatype.hvector(16, 4 * KiB, 8 * KiB, BYTE).commit()
        span = vec.span_for_count(1)
        got = {
            b: run_transfer(vec, 1, span, backend=b)[0]
            for b in BACKEND_NAMES
        }
        assert all(
            np.array_equal(got[b], got["gpu"]) for b in BACKEND_NAMES
        )


class TestForcedBackends:
    def test_backend_counters_bump(self):
        vec = Datatype.hvector(1024, 4, 8, BYTE).commit()
        for b in BACKEND_NAMES:
            before = PERF.snapshot().get(f"backend_{b}_chunks", 0)
            run_transfer(vec, 1, vec.span_for_count(1), backend=b)
            assert PERF.snapshot().get(f"backend_{b}_chunks", 0) > before

    def test_nic_labels_in_trace(self):
        vec = Datatype.hvector(64, 1 * KiB, 2 * KiB, BYTE).commit()
        _, tracer = run_transfer(vec, 1, vec.span_for_count(1), backend="nic")
        labels = [iv.label for iv in tracer.intervals]
        assert any(lbl.startswith("nic-gather") for lbl in labels)
        assert any(lbl.startswith("nic-scatter") for lbl in labels)

    def test_forced_gpu_matches_default_trace(self):
        # backend="gpu" is the default path spelled explicitly: the two
        # runs must produce bit-identical traces.
        vec = Datatype.hvector(8192, 4, 8, BYTE).commit()
        span = vec.span_for_count(1)
        _, t_default = run_transfer(vec, 1, span)
        _, t_forced = run_transfer(vec, 1, span, backend="gpu")
        assert t_default.intervals == t_forced.intervals

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            GpuNcConfig(backend="smoke-signals")


class TestNicCostModel:
    def segs(self, count, total):
        return SimpleNamespace(count=count, total_bytes=total)

    def test_cost_formula(self):
        got = nic_offload_cost(HW, self.segs(10, 40 * KiB))
        want = (NIC_RING_OVERHEAD + 10 * NIC_DESC_COST
                + 40 * KiB / HW.pcie_bandwidth)
        assert got == pytest.approx(want)

    def test_descriptor_ring_batches(self):
        base = nic_offload_cost(HW, self.segs(NIC_MAX_DESCRIPTORS, 1024))
        spill = nic_offload_cost(HW, self.segs(NIC_MAX_DESCRIPTORS + 1, 1024))
        assert spill - base == pytest.approx(NIC_RING_OVERHEAD + NIC_DESC_COST)

    def test_empty_range_costs_overhead_only(self):
        assert nic_offload_cost(HW, self.segs(0, 0)) == HW.pcie_copy_overhead

    def test_modeled_cost_rejects_unknown(self):
        vec = Datatype.hvector(16, 4, 8, BYTE).commit()
        with pytest.raises(ValueError, match="backend"):
            modeled_chunk_cost("carrier-pigeon", HW, vec, 1, 0, 64)


class TestChooserGuideline:
    """The chooser never picks a backend whose modeled cost is out of
    guideline tolerance against the default -- whatever was measured."""

    FINE = Datatype.hvector(16 * 1024, 4, 8, BYTE).commit()
    WIDE = Datatype.hvector(16, 4 * KiB, 8 * KiB, BYTE).commit()

    @settings(max_examples=20, deadline=None)
    @given(
        lat=st.tuples(*[st.floats(1e-7, 1e-2) for _ in range(3)]),
        wide=st.booleans(),
        chunk=st.sampled_from([16 * KiB, 64 * KiB]),
    )
    def test_modeled_veto_property(self, lat, wide, chunk):
        dtype = self.WIDE if wide else self.FINE
        measured = dict(zip(BACKEND_NAMES, lat))
        chosen = guideline_backend(HW, dtype, 1, chunk, measured)
        if chosen == "gpu":
            return
        total = dtype.segments_for_count(1).total_bytes
        hi = max(min(chunk, total), 1)
        base = modeled_chunk_cost("gpu", HW, dtype, 1, 0, hi)
        assert modeled_chunk_cost(chosen, HW, dtype, 1, 0, hi) <= \
            base * (1.0 + GUIDELINE_TOLERANCE)

    def test_fake_measurement_vetoed(self):
        # host "measures" 100x faster on a fine layout, but its modeled
        # strided-PCIe cost is far out of tolerance: the guard keeps gpu.
        before = PERF.snapshot().get("tune_backend_guard", 0)
        measured = {"gpu": 1e-3, "host": 1e-5, "nic": 1e-5}
        assert guideline_backend(HW, self.FINE, 1, 64 * KiB, measured) == "gpu"
        assert PERF.snapshot().get("tune_backend_guard", 0) > before

    def test_wide_layout_prefers_nic(self):
        # On wide segments the NIC's modeled cost really is lower, so a
        # genuinely better measurement is allowed through.
        measured = {"gpu": 1e-4, "host": 9e-5, "nic": 2e-5}
        assert guideline_backend(HW, self.WIDE, 1, 64 * KiB,
                                 measured) == "nic"


def backend_table(sig, bucket, backend, chunk=64 * KiB):
    table = TuningTable("test")
    table.set(sig, bucket, TuningEntry(
        chunk_bytes=chunk, pipeline_threshold=min(chunk, 64 * KiB),
        tbuf_chunks=64, use_plans=True, backend=backend,
    ))
    return table


class TestTunedBackendChooser:
    def test_table_routes_to_nic(self):
        size = 64 * KiB
        vec = Datatype.hvector(size // (4 * KiB), 4 * KiB, 8 * KiB,
                               BYTE).commit()
        table = backend_table(vec.layout_signature(1), size_bucket(size),
                              "nic")
        before = PERF.snapshot().get("backend_nic_chunks", 0)
        default = mv2_gpu_nc_latency(size, elem_bytes=4 * KiB, iterations=2)
        tuned = mv2_gpu_nc_latency(size, elem_bytes=4 * KiB, iterations=2,
                                   tuning=table)
        assert PERF.snapshot().get("backend_nic_chunks", 0) > before
        assert tuned < default

    def test_forced_config_beats_table(self):
        # An explicit GpuNcConfig(backend=...) wins over the table's pick.
        size = 64 * KiB
        vec = Datatype.hvector(size // (4 * KiB), 4 * KiB, 8 * KiB,
                               BYTE).commit()
        table = backend_table(vec.layout_signature(1), size_bucket(size),
                              "nic")
        before = PERF.snapshot().get("backend_nic_chunks", 0)
        mv2_gpu_nc_latency(size, elem_bytes=4 * KiB, iterations=1,
                           tuning=table, gpu_config=GpuNcConfig(backend="host"))
        assert PERF.snapshot().get("backend_nic_chunks", 0) == before

    def test_peer_pool_clamps_tuned_chunk(self):
        # Satellite: the tuned chunk preference is clamped against BOTH
        # endpoints' vbuf pools -- shrink only the sender's view of its
        # peer and the clamp counter must fire.
        size = 256 * KiB
        vec = Datatype.hvector(size // 4, 4, 8, BYTE).commit()
        table = backend_table(vec.layout_signature(1), size_bucket(size),
                              "gpu", chunk=128 * KiB)
        pattern = np.random.default_rng(3).integers(0, 256, size * 2,
                                                    np.uint8)
        cluster = Cluster(2)
        world = MpiWorld(cluster, tuning=table)
        world.endpoints[0].peer_vbuf_bytes = 8 * KiB

        def program(ctx):
            buf = ctx.cuda.malloc(size * 2)
            if ctx.rank == 0:
                buf.fill_from(pattern)
                yield from ctx.comm.Send(buf, 1, vec, dest=1)
            else:
                yield from ctx.comm.Recv(buf, 1, vec, source=0)
            return buf

        before = PERF.snapshot().get("tune_chunk_clamped", 0)
        bufs = world.run(program)
        assert PERF.snapshot().get("tune_chunk_clamped", 0) > before
        assert np.array_equal(pack_bytes(bufs[1], vec, 1),
                              pack_bytes(bufs[0], vec, 1))

    @pytest.mark.parametrize("device", [True, False])
    def test_contiguous_bypass_counted(self, device):
        # Contiguous sends skip the table on purpose (device engine path
        # and host protocol path alike); the bypass is counted and no
        # lookup traffic is generated.
        table = backend_table(
            Datatype.hvector(1024, 4, 8, BYTE).commit().layout_signature(1),
            64 * KiB, "gpu")
        cluster = Cluster(2)
        world = MpiWorld(cluster, tuning=table)

        def program(ctx):
            alloc = ctx.cuda.malloc if device else ctx.node.malloc_host
            buf = alloc(128 * KiB)
            if ctx.rank == 0:
                yield from ctx.comm.Send(buf, 128 * KiB, BYTE, dest=1)
            else:
                yield from ctx.comm.Recv(buf, 128 * KiB, BYTE, source=0)

        before = PERF.snapshot()
        world.run(program)
        after = PERF.snapshot()
        assert after.get("tune_contig_bypass", 0) > \
            before.get("tune_contig_bypass", 0)
        for name in ("tune_lookup_hit", "tune_lookup_miss"):
            assert after.get(name, 0) == before.get(name, 0)


class TestPartitionInvariantCounters:
    """Satellite regression: tune/backend counters (and thus the footers)
    must not depend on how ranks were partitioned into shards."""

    def deltas(self, shards):
        size = 64 * KiB
        vec = Datatype.hvector(size // (4 * KiB), 4 * KiB, 8 * KiB,
                               BYTE).commit()
        table = backend_table(vec.layout_signature(1), size_bucket(size),
                              "nic")
        before = PERF.snapshot()
        mv2_gpu_nc_latency(size, elem_bytes=4 * KiB, iterations=2,
                           tuning=table, shards=shards)
        after = PERF.snapshot()
        names = set(PerfStats.TUNE_COUNTERS) | set(PerfStats.BACKEND_COUNTERS)
        return {n: after.get(n, 0) - before.get(n, 0) for n in sorted(names)}

    def test_tune_counters_shard_invariant(self):
        sequential = self.deltas(shards=1)
        sharded = self.deltas(shards=2)
        assert sequential == sharded
        assert sequential["tune_lookup_hit"] > 0
        assert sequential["backend_nic_chunks"] > 0

    def test_footers_shard_invariant(self):
        footers = []
        for shards in (1, 2):
            stats = PerfStats()
            stats.merge(self.deltas(shards=shards))
            footers.append((stats.tune_footer(), stats.backend_footer()))
        assert footers[0] == footers[1]
