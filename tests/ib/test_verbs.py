"""Tests for the InfiniBand verbs and fabric model."""

import numpy as np
import pytest

from repro.hw import Cluster
from repro.ib import ControlMessage, RemoteBuffer


@pytest.fixture
def cluster():
    return Cluster(3)


def run(cluster, gen):
    return cluster.env.run(cluster.env.process(gen))


class TestRegistration:
    def test_register_host_buffer(self, cluster):
        node = cluster.nodes[0]
        buf = node.malloc_host(1024)
        rb = node.hca.register(buf)
        assert rb == RemoteBuffer(0, buf.offset, 1024)

    def test_register_device_buffer_rejected(self, cluster):
        node = cluster.nodes[0]
        dbuf = node.gpu.malloc(1024)
        with pytest.raises(ValueError):
            node.hca.register(dbuf)

    def test_register_foreign_buffer_rejected(self, cluster):
        buf = cluster.nodes[1].malloc_host(64)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.register(buf)

    def test_resolve_roundtrip(self, cluster):
        node = cluster.nodes[1]
        buf = node.malloc_host(256)
        rb = node.hca.register(buf)
        back = node.hca.resolve(rb)
        assert back.offset == buf.offset and back.nbytes == 256

    def test_resolve_wrong_node_rejected(self, cluster):
        buf = cluster.nodes[1].malloc_host(64)
        rb = cluster.nodes[1].hca.register(buf)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.resolve(rb)

    def test_remote_buffer_sub_window(self):
        rb = RemoteBuffer(2, 1000, 100)
        sub = rb.sub(40, 20)
        assert sub == RemoteBuffer(2, 1040, 20)
        with pytest.raises(ValueError):
            rb.sub(90, 20)


class TestRdmaWrite:
    def test_moves_bytes_to_remote_memory(self, cluster):
        src_node, dst_node = cluster.nodes[0], cluster.nodes[1]
        src = src_node.malloc_host(512)
        dst = dst_node.malloc_host(512)
        payload = np.arange(512, dtype=np.uint8)
        src.fill_from(payload)
        rb = dst_node.hca.register(dst)

        def program():
            yield src_node.hca.rdma_write(src, rb)
            # Local completion precedes remote visibility by one wire
            # latency; wait it out before checking the target memory.
            yield cluster.env.timeout(cluster.cfg.net_latency * 1.01)

        run(cluster, program())
        assert np.array_equal(dst.view(), payload)

    def test_takes_modeled_time(self, cluster):
        """Local completion fires at TX completion: post overhead plus the
        wire-streaming time, *without* the one-way propagation latency
        (which only delays remote visibility)."""
        cfg = cluster.cfg
        n = 1 << 20
        src = cluster.nodes[0].malloc_host(n)
        dst = cluster.nodes[1].malloc_host(n)
        rb = cluster.nodes[1].hca.register(dst)

        def program():
            yield cluster.nodes[0].hca.rdma_write(src, rb)
            return cluster.env.now

        t = run(cluster, program())
        expected = cfg.net_post_overhead + n / cfg.net_bandwidth
        assert t == pytest.approx(expected, rel=0.001)

    def test_remote_visibility_one_latency_after_completion(self, cluster):
        """The written bytes land at the target one wire latency after the
        sender's local completion."""
        cfg = cluster.cfg
        n = 4096
        src = cluster.nodes[0].malloc_host(n)
        src.view()[:] = 0xA7
        dst = cluster.nodes[1].malloc_host(n)
        rb = cluster.nodes[1].hca.register(dst)
        env = cluster.env

        def program():
            done = cluster.nodes[0].hca.rdma_write(src, rb)
            yield done
            at_completion = int(dst.view()[0])
            yield env.timeout(cfg.net_latency * 1.01)
            return at_completion, int(dst.view()[0])

        before, after = run(cluster, program())
        assert before == 0  # not yet visible at local completion
        assert after == 0xA7

    def test_size_mismatch_rejected(self, cluster):
        src = cluster.nodes[0].malloc_host(100)
        dst = cluster.nodes[1].malloc_host(200)
        rb = cluster.nodes[1].hca.register(dst)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.rdma_write(src, rb)

    def test_device_source_rejected(self, cluster):
        src = cluster.nodes[0].gpu.malloc(64)
        dst = cluster.nodes[1].malloc_host(64)
        rb = cluster.nodes[1].hca.register(dst)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.rdma_write(src, rb)

    def test_tx_serializes_concurrent_writes(self, cluster):
        """Two large writes from one node share the TX engine."""
        cfg = cluster.cfg
        n = 1 << 22
        srcs = [cluster.nodes[0].malloc_host(n) for _ in range(2)]
        dsts = [cluster.nodes[i + 1].malloc_host(n) for i in range(2)]
        rbs = [cluster.nodes[i + 1].hca.register(dsts[i]) for i in range(2)]

        def program():
            e1 = cluster.nodes[0].hca.rdma_write(srcs[0], rbs[0])
            e2 = cluster.nodes[0].hca.rdma_write(srcs[1], rbs[1])
            yield e1 & e2
            return cluster.env.now

        t = run(cluster, program())
        one = n / cfg.net_bandwidth
        assert t > 2 * one  # serialized, not parallel


class TestControlMessages:
    def test_delivered_to_remote_inbox(self, cluster):
        def receiver():
            msg = yield cluster.nodes[1].hca.inbox.get()
            return msg

        def sender():
            yield cluster.nodes[0].hca.send_control(1, {"type": "RTS", "tag": 7})

        cluster.env.process(sender())
        msg = run(cluster, receiver())
        assert isinstance(msg, ControlMessage)
        assert msg.src_node == 0 and msg.dst_node == 1
        assert msg.payload == {"type": "RTS", "tag": 7}

    def test_pairwise_ordering(self, cluster):
        """Messages between one pair arrive in send order (RC semantics)."""
        got = []

        def receiver():
            for _ in range(5):
                msg = yield cluster.nodes[1].hca.inbox.get()
                got.append(msg.payload)

        def sender():
            for i in range(5):
                yield cluster.nodes[0].hca.send_control(1, i)

        cluster.env.process(sender())
        run(cluster, receiver())
        assert got == [0, 1, 2, 3, 4]

    def test_loopback_delivery(self, cluster):
        def program():
            cluster.nodes[0].hca.send_control(0, "self")
            msg = yield cluster.nodes[0].hca.inbox.get()
            return msg.payload

        assert run(cluster, program()) == "self"

    def test_loopback_models_size(self, cluster):
        """Loopback pays a size-dependent host-memcpy term, so a large
        self-message takes measurably longer than a tiny one."""
        cfg = cluster.cfg

        def program(size):
            cluster.nodes[0].hca.send_control(0, "self", size_bytes=size)
            yield cluster.nodes[0].hca.inbox.get()
            return cluster.env.now

        t_small = run(cluster, program(64))
        expected = cfg.net_control_overhead + 64 / cfg.host_memcpy_bandwidth
        assert t_small == pytest.approx(expected, rel=0.001)

        big = 1 << 20
        t_big = run(cluster, program(big)) - t_small
        assert t_big == pytest.approx(
            cfg.net_control_overhead + big / cfg.host_memcpy_bandwidth,
            rel=0.001,
        )

    def test_control_message_latency_is_microseconds(self, cluster):
        def receiver():
            yield cluster.nodes[1].hca.inbox.get()
            return cluster.env.now

        def sender():
            yield cluster.nodes[0].hca.send_control(1, "ping")

        cluster.env.process(sender())
        t = run(cluster, receiver())
        assert 1e-6 < t < 10e-6

    def test_rdma_then_finish_message_ordering(self, cluster):
        """The paper's correctness requirement: a FIN control message sent
        after RDMA local completion must observe the data at the receiver."""
        src = cluster.nodes[0].malloc_host(4096)
        src.view()[:] = 0x5A
        dst = cluster.nodes[1].malloc_host(4096)
        rb = cluster.nodes[1].hca.register(dst)

        def sender():
            yield cluster.nodes[0].hca.rdma_write(src, rb)
            yield cluster.nodes[0].hca.send_control(1, "FIN")

        def receiver():
            msg = yield cluster.nodes[1].hca.inbox.get()
            assert msg.payload == "FIN"
            # Data must already be visible.
            return int(dst.view()[0])

        cluster.env.process(sender())
        assert run(cluster, receiver()) == 0x5A
