"""Fault injection and the rendezvous recovery layer.

Four guarantees:

* **Convergence** -- under every injected fault class the transfer
  completes (bounded by ``world.run(until=...)``, so a hang fails loudly),
  delivers verified payload bytes, and the matching recovery counters are
  nonzero.
* **Necessity** -- with recovery disarmed (``recovery=False``) a dropped
  grant hangs the rendezvous and a failed RDMA write surfaces as a loud
  :class:`RdmaError`; the retry layer is what converts both into progress.
* **Determinism** -- the same FaultPlan produces the identical fault
  record sequence and final clock on every run.
* **Degradation** -- starved device staging falls back to the host-style
  strided path (counted, traced) and still delivers correct bytes.
"""

import numpy as np
import pytest

from repro.core import GpuNcConfig
from repro.core.config import RecoveryConfig
from repro.hw import Cluster
from repro.ib import FaultPlan, FaultSpec, RdmaError
from repro.mpi import BYTE, Datatype, MpiWorld
from repro.mpi.pack import pack_bytes
from repro.mpi.status import MpiError
from repro.perf.stats import PERF


def _strided_transfer(plan, rows=1 << 12, recovery=None, gpu_config=None,
                      until=1.0):
    """One rank0 -> rank1 strided GPU rendezvous; returns a result dict."""
    vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
    span = rows * 8
    cluster = Cluster(2, faults=plan)
    world = MpiWorld(cluster, gpu_config=gpu_config, recovery=recovery)

    def program(ctx):
        buf = ctx.cuda.malloc(span)
        if ctx.rank == 0:
            buf.view()[:] = np.arange(span, dtype=np.uint64) % 249
            yield from ctx.comm.Send(buf, 1, vec, dest=1)
        else:
            buf.view()[:] = 0
            yield from ctx.comm.Recv(buf, 1, vec, source=0)
        return buf

    before = PERF.snapshot()
    bufs = world.run(program, until=until)
    after = PERF.snapshot()
    return {
        "cluster": cluster,
        "now": cluster.env.now,
        "verified": bool(np.array_equal(
            pack_bytes(bufs[0], vec, 1), pack_bytes(bufs[1], vec, 1)
        )),
        "delta": {
            k: after.get(k, 0) - before.get(k, 0)
            for k in PERF.FAULT_COUNTERS
        },
    }


FAULT_CASES = [
    pytest.param(
        [FaultSpec("ctl", "drop", ctl_type="rts")],
        {"fault_ctl_drop": 1, "rts_retry": 1},
        id="drop-rts",
    ),
    pytest.param(
        [FaultSpec("ctl", "drop", ctl_type="cts")],
        {"fault_ctl_drop": 1, "cts_resent": 1},
        id="drop-cts",
    ),
    pytest.param(
        [FaultSpec("ctl", "drop", ctl_type="fin")],
        {"fault_ctl_drop": 1, "nack_sent": 1, "fin_resent": 1},
        id="drop-fin",
    ),
    pytest.param(
        [
            FaultSpec("ctl", "duplicate", ctl_type="rts"),
            FaultSpec("ctl", "duplicate", ctl_type="cts"),
            FaultSpec("ctl", "duplicate", ctl_type="fin"),
        ],
        {"fault_ctl_dup": 3, "dup_rts_suppressed": 1,
         "dup_cts_suppressed": 1, "dup_fin_suppressed": 1},
        id="duplicate-all",
    ),
    pytest.param(
        [FaultSpec("ctl", "delay", ctl_type="cts", delay=400e-6)],
        {"fault_ctl_delay": 1},
        id="ctl-delay-spike",
    ),
    pytest.param(
        # Stall past RecoveryConfig.rdma_timeout: the attempt is abandoned
        # (its token cancelled) and the chunk retransmitted.
        [FaultSpec("rdma_write", "stall", delay=500e-6)],
        {"fault_rdma_stall": 1, "rdma_retry": 1},
        id="rdma-stall-beyond-timeout",
    ),
    pytest.param(
        [FaultSpec("rdma_write", "fail", count=2)],
        {"fault_rdma_fail": 2, "rdma_retry": 2},
        id="rdma-fail-twice",
    ),
]


class TestConvergenceUnderFaults:
    @pytest.mark.parametrize("specs,expect", FAULT_CASES)
    def test_fault_class_converges_with_verified_data(self, specs, expect):
        res = _strided_transfer(FaultPlan(specs=tuple(specs)))
        assert res["verified"]
        for counter, minimum in expect.items():
            assert res["delta"][counter] >= minimum, (
                f"{counter}: {res['delta']}"
            )

    def test_fault_free_armed_run_takes_no_recovery_action(self):
        # Recovery armed explicitly, perfect fabric: no counter moves.
        res = _strided_transfer(None, recovery=RecoveryConfig())
        assert res["verified"]
        assert not any(res["delta"].values()), res["delta"]


class TestRecoveryIsWhatSavesUs:
    def test_dropped_grant_hangs_without_recovery(self):
        plan = FaultPlan(specs=(FaultSpec("ctl", "drop", ctl_type="cts"),))
        with pytest.raises(MpiError, match="not finished"):
            _strided_transfer(plan, recovery=False, until=0.05)

    def test_rdma_failure_is_loud_without_recovery(self):
        plan = FaultPlan(specs=(FaultSpec("rdma_write", "fail"),))
        with pytest.raises(RdmaError):
            _strided_transfer(plan, recovery=False, until=0.05)


class TestDeterminism:
    def test_same_plan_same_fault_sequence_and_clock(self):
        plan = FaultPlan.random(seed=20110926, nfaults=3)
        runs = []
        for _ in range(2):
            res = _strided_transfer(plan)
            assert res["verified"]
            tracer = res["cluster"].tracer
            runs.append((
                [(f.time, f.kind, f.src, f.dst, f.meta) for f in tracer.faults],
                res["now"],
            ))
        assert runs[0] == runs[1]

    def test_random_plans_reproducible_from_seed(self):
        assert FaultPlan.random(7) == FaultPlan.random(7)
        assert FaultPlan.random(7) != FaultPlan.random(8)


class TestDegradation:
    def test_starved_tbufs_degrade_to_host_path(self):
        """One device staging chunk + an aggressive staging timeout: later
        pipeline chunks fall off the GPU-offload path onto the strided
        PCIe path, and the payload still verifies."""
        res = _strided_transfer(
            None,
            rows=1 << 15,  # 4 x 64 KiB chunks
            recovery=RecoveryConfig(staging_timeout=1e-6),
            gpu_config=GpuNcConfig(tbuf_chunks=1),
        )
        assert res["verified"]
        assert res["delta"]["degrade_to_host"] >= 1
        kinds = [f.kind for f in res["cluster"].tracer.faults]
        assert "recovery:degrade" in kinds


class TestFaultSpecValidation:
    def test_rdma_ops_reject_post_wire_delay(self):
        # RC ordering: an rdma "delay" would let FIN overtake the data.
        with pytest.raises(ValueError):
            FaultSpec("rdma_write", "delay", delay=1e-6)
        with pytest.raises(ValueError):
            FaultSpec("ctl", "stall", delay=1e-6)

    def test_stall_and_delay_need_positive_delay(self):
        with pytest.raises(ValueError):
            FaultSpec("rdma_write", "stall")
        with pytest.raises(ValueError):
            FaultSpec("ctl", "delay")

    def test_counts_are_one_based_and_positive(self):
        with pytest.raises(ValueError):
            FaultSpec("ctl", "drop", nth=0)
        with pytest.raises(ValueError):
            FaultSpec("ctl", "drop", count=0)

    def test_disabled_plan_installs_no_injector(self):
        plan = FaultPlan(
            specs=(FaultSpec("ctl", "drop"),), enabled=False
        )
        cluster = Cluster(2, faults=plan)
        assert cluster.fabric.injector is None
