"""Tests for RDMA read and the fabric presets."""

import numpy as np
import pytest

from repro.hw import Cluster, HardwareConfig


@pytest.fixture
def cluster():
    return Cluster(2)


def run(cluster, gen):
    return cluster.env.run(cluster.env.process(gen))


class TestRdmaRead:
    def test_fetches_remote_bytes(self, cluster):
        src = cluster.nodes[1].malloc_host(256)
        src.view()[:] = np.arange(256, dtype=np.uint8)
        rb = cluster.nodes[1].hca.register(src)
        dst = cluster.nodes[0].malloc_host(256)

        def program():
            yield cluster.nodes[0].hca.rdma_read(dst, rb)

        run(cluster, program())
        assert np.array_equal(dst.view(), src.view())

    def test_read_takes_two_latencies(self, cluster):
        cfg = cluster.cfg
        n = 1 << 20
        src = cluster.nodes[1].malloc_host(n)
        rb = cluster.nodes[1].hca.register(src)
        dst = cluster.nodes[0].malloc_host(n)

        def program():
            yield cluster.nodes[0].hca.rdma_read(dst, rb)
            return cluster.env.now

        t = run(cluster, program())
        expect = (
            cfg.net_post_overhead + 2 * cfg.net_latency + n / cfg.net_bandwidth
        )
        assert t == pytest.approx(expect, rel=0.01)

    def test_size_mismatch_rejected(self, cluster):
        src = cluster.nodes[1].malloc_host(64)
        rb = cluster.nodes[1].hca.register(src)
        dst = cluster.nodes[0].malloc_host(32)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.rdma_read(dst, rb)

    def test_device_destination_rejected(self, cluster):
        src = cluster.nodes[1].malloc_host(64)
        rb = cluster.nodes[1].hca.register(src)
        dbuf = cluster.nodes[0].gpu.malloc(64)
        with pytest.raises(ValueError):
            cluster.nodes[0].hca.rdma_read(dbuf, rb)

    def test_responder_contends_with_target_sends(self, cluster):
        """A read response shares the target's TX engine with its sends."""
        cfg = cluster.cfg
        n = 1 << 22
        src = cluster.nodes[1].malloc_host(n)
        rb = cluster.nodes[1].hca.register(src)
        dst = cluster.nodes[0].malloc_host(n)
        other_dst = cluster.nodes[0].malloc_host(n)
        other_rb = cluster.nodes[0].hca.register(other_dst)
        own_src = cluster.nodes[1].malloc_host(n)

        def program():
            read_ev = cluster.nodes[0].hca.rdma_read(dst, rb)
            write_ev = cluster.nodes[1].hca.rdma_write(own_src, other_rb)
            yield read_ev & write_ev
            return cluster.env.now

        t = run(cluster, program())
        serial = 2 * n / cfg.net_bandwidth
        assert t > serial * 0.95  # both streams shared node 1's TX


class TestFabricPresets:
    def test_ddr_slower_than_qdr(self):
        qdr = HardwareConfig.fermi_qdr()
        ddr = HardwareConfig.fermi_ddr_ib()
        assert ddr.net_bandwidth < qdr.net_bandwidth
        assert ddr.net_latency > qdr.net_latency

    def test_roce_slowest(self):
        roce = HardwareConfig.fermi_roce()
        assert roce.net_bandwidth < HardwareConfig.fermi_ddr_ib().net_bandwidth

    def test_presets_share_pcie_model(self):
        """The PCIe side is identical across fabrics -- the point of the
        interconnect ablation."""
        qdr, roce = HardwareConfig.fermi_qdr(), HardwareConfig.fermi_roce()
        assert qdr.pcie_row_cost_nc2nc == roce.pcie_row_cost_nc2nc
        assert qdr.pcie_bandwidth == roce.pcie_bandwidth
