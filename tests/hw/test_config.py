"""Tests for the calibrated hardware cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hw import CopyKind, HardwareConfig, KiB, MiB


@pytest.fixture(scope="module")
def cfg():
    return HardwareConfig.fermi_qdr()


class TestValidation:
    def test_default_is_valid(self):
        HardwareConfig()

    @pytest.mark.parametrize(
        "field", ["pcie_bandwidth", "net_bandwidth", "device_bandwidth"]
    )
    def test_nonpositive_bandwidth_rejected(self, field):
        with pytest.raises(ValueError):
            HardwareConfig(**{field: 0.0})

    def test_negative_overhead_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(net_latency=-1e-6)

    def test_engine_count_rejected(self):
        with pytest.raises(ValueError):
            HardwareConfig(num_d2h_engines=0)

    def test_with_overrides(self, cfg):
        cfg2 = cfg.with_overrides(net_bandwidth=1e9)
        assert cfg2.net_bandwidth == 1e9
        assert cfg.net_bandwidth == 3.2e9  # original untouched

    def test_frozen(self, cfg):
        with pytest.raises(Exception):
            cfg.net_bandwidth = 1.0


class TestCalibrationAnchors:
    """The Section I-A / Figure 2 anchors from the paper (see DESIGN.md)."""

    def test_nc2nc_4kb_near_200us(self, cfg):
        # 4 KB vector of 4-byte elements, stride 2 elements: 1024 rows.
        t = cfg.memcpy2d_time(CopyKind.D2H, 4, 1024, 8, 8)
        assert 150e-6 < t < 250e-6

    def test_nc2c_4kb_near_281us(self, cfg):
        t = cfg.memcpy2d_time(CopyKind.D2H, 4, 1024, 8, 4)
        assert 230e-6 < t < 330e-6

    def test_nc2c_worse_than_nc2nc(self, cfg):
        """The paper's counter-intuitive measurement: packing into a
        contiguous host buffer via cudaMemcpy2D is slower than nc2nc."""
        nc2nc = cfg.memcpy2d_time(CopyKind.D2H, 4, 1024, 8, 8)
        nc2c = cfg.memcpy2d_time(CopyKind.D2H, 4, 1024, 8, 4)
        assert nc2c > nc2nc

    def test_d2d2h_4kb_near_35us(self, cfg):
        t = cfg.memcpy2d_time(CopyKind.D2D, 4, 1024, 8, 4) + cfg.memcpy_time(
            CopyKind.D2H, 4 * KiB
        )
        assert 20e-6 < t < 50e-6

    def test_d2d2h_fraction_at_4mb(self, cfg):
        """Paper: at 4 MB, D2D2H costs ~4.8% of D2H nc2nc."""
        rows = MiB
        nc2nc = cfg.memcpy2d_time(CopyKind.D2H, 4, rows, 8, 8)
        d2d2h = cfg.memcpy2d_time(CopyKind.D2D, 4, rows, 8, 4) + cfg.memcpy_time(
            CopyKind.D2H, 4 * MiB
        )
        assert 0.02 < d2d2h / nc2nc < 0.10

    def test_wide_pitch_rows_cost_more(self, cfg):
        """The pitch surcharge that produces the Figure 6 breakdown."""
        narrow = cfg.memcpy2d_time(CopyKind.D2H, 4, 8192, 8, 8)
        wide = cfg.memcpy2d_time(CopyKind.D2H, 4, 8192, 32 * KiB, 32 * KiB)
        assert wide > 5 * narrow


class TestMemcpyLaws:
    def test_zero_bytes_costs_overhead_only(self, cfg):
        assert cfg.memcpy_time(CopyKind.D2H, 0) == cfg.pcie_copy_overhead

    def test_negative_bytes_rejected(self, cfg):
        with pytest.raises(ValueError):
            cfg.memcpy_time(CopyKind.D2H, -1)

    def test_blocking_adds_sync_overhead(self, cfg):
        async_t = cfg.memcpy_time(CopyKind.D2H, KiB)
        block_t = cfg.memcpy_time(CopyKind.D2H, KiB, blocking=True)
        assert block_t == pytest.approx(async_t + cfg.cuda_sync_overhead)

    def test_d2d_uses_device_bandwidth(self, cfg):
        big = 64 * MiB
        t_d2d = cfg.memcpy_time(CopyKind.D2D, big)
        t_pcie = cfg.memcpy_time(CopyKind.D2H, big)
        assert t_d2d < t_pcie / 5

    def test_contiguous_2d_equals_1d(self, cfg):
        t2d = cfg.memcpy2d_time(CopyKind.D2H, 512, 8, 512, 512)
        t1d = cfg.memcpy_time(CopyKind.D2H, 4096)
        assert t2d == pytest.approx(t1d)

    def test_single_row_is_contiguous(self, cfg):
        t = cfg.memcpy2d_time(CopyKind.D2H, 512, 1, 4096, 4096)
        assert t == pytest.approx(cfg.memcpy_time(CopyKind.D2H, 512))

    def test_width_exceeding_pitch_rejected(self, cfg):
        with pytest.raises(ValueError):
            cfg.memcpy2d_time(CopyKind.D2H, 100, 4, 50, 100)

    def test_h2h_strided_matches_host_pack(self, cfg):
        t = cfg.memcpy2d_time(CopyKind.H2H, 8, 100, 64, 8)
        assert t == pytest.approx(cfg.host_pack_time(100, 800))

    @given(
        st.integers(min_value=1, max_value=MiB),
        st.integers(min_value=1, max_value=MiB),
    )
    def test_memcpy_monotone_in_size(self, a, b):
        cfg = HardwareConfig.fermi_qdr()
        small, large = min(a, b), max(a, b)
        for kind in CopyKind:
            assert cfg.memcpy_time(kind, small) <= cfg.memcpy_time(kind, large)

    @given(st.integers(min_value=1, max_value=4096))
    def test_strided_2d_never_cheaper_than_contiguous(self, rows):
        cfg = HardwareConfig.fermi_qdr()
        width = 16
        strided = cfg.memcpy2d_time(CopyKind.D2H, width, rows, 2 * width, 2 * width)
        contig = cfg.memcpy_time(CopyKind.D2H, width * rows)
        assert strided >= contig

    @given(
        st.sampled_from(list(CopyKind)),
        st.integers(min_value=1, max_value=1024),
        st.integers(min_value=1, max_value=1024),
    )
    def test_2d_monotone_in_height(self, kind, h1, h2):
        cfg = HardwareConfig.fermi_qdr()
        lo, hi = min(h1, h2), max(h1, h2)
        t_lo = cfg.memcpy2d_time(kind, 8, lo, 32, 32)
        t_hi = cfg.memcpy2d_time(kind, 8, hi, 32, 32)
        assert t_lo <= t_hi + 1e-15


class TestNetworkLaws:
    def test_rdma_time_components(self, cfg):
        t = cfg.rdma_time(MiB)
        assert t == pytest.approx(
            cfg.net_post_overhead + cfg.net_latency + MiB / cfg.net_bandwidth
        )

    def test_control_message_is_cheap(self, cfg):
        assert cfg.control_message_time() < 5e-6

    def test_kernel_time_scales_with_flops(self, cfg):
        t1 = cfg.kernel_time(1e6)
        t2 = cfg.kernel_time(2e6)
        assert t2 > t1
        assert cfg.kernel_time(0) == cfg.kernel_launch_overhead

    def test_negative_flops_rejected(self, cfg):
        with pytest.raises(ValueError):
            cfg.kernel_time(-1)


class TestPresets:
    def test_single_engine_preset(self):
        cfg = HardwareConfig.single_engine_gpu()
        assert cfg.shared_engines

    def test_fermi_preset_has_independent_engines(self):
        assert not HardwareConfig.fermi_qdr().shared_engines
