"""Tests for arenas, allocators and buffer pointers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import ALIGNMENT, Arena, InvalidPointerError, OutOfMemoryError


@pytest.fixture
def arena():
    return Arena(1 << 20, space="device", name="test")


class TestArenaBasics:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Arena(0, space="device")

    def test_invalid_space(self):
        with pytest.raises(ValueError):
            Arena(1024, space="gpu")

    def test_alloc_returns_aligned_offsets(self, arena):
        ptrs = [arena.alloc(100) for _ in range(5)]
        for p in ptrs:
            assert p.offset % ALIGNMENT == 0
        assert len({p.offset for p in ptrs}) == 5

    def test_alloc_zero_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.alloc(0)

    def test_allocations_do_not_overlap(self, arena):
        a = arena.alloc(1000)
        b = arena.alloc(1000)
        assert a.end <= b.offset or b.end <= a.offset

    def test_out_of_memory(self):
        small = Arena(1024, space="host")
        small.alloc(512)
        with pytest.raises(OutOfMemoryError):
            small.alloc(1024)

    def test_free_enables_reuse(self, arena):
        a = arena.alloc(arena.size // 2)
        with pytest.raises(OutOfMemoryError):
            arena.alloc(arena.size // 2 + ALIGNMENT)
        arena.free(a)
        arena.alloc(arena.size // 2)  # fits again

    def test_double_free_rejected(self, arena):
        a = arena.alloc(100)
        arena.free(a)
        with pytest.raises(InvalidPointerError):
            arena.free(a)

    def test_free_foreign_pointer_rejected(self, arena):
        other = Arena(1024, space="device")
        p = other.alloc(100)
        with pytest.raises(InvalidPointerError):
            arena.free(p)

    def test_free_subpointer_rejected(self, arena):
        a = arena.alloc(1000)
        with pytest.raises(InvalidPointerError):
            arena.free(a.sub(0, 100))

    def test_accounting(self, arena):
        assert arena.allocated_bytes == 0
        a = arena.alloc(100)
        assert arena.allocated_bytes == ALIGNMENT  # rounded up
        assert arena.num_allocations == 1
        arena.free(a)
        assert arena.allocated_bytes == 0
        assert arena.free_bytes == arena.size

    def test_coalescing_restores_full_hole(self, arena):
        ptrs = [arena.alloc(1000) for _ in range(10)]
        # Free in a scrambled order; holes must coalesce back to one span.
        for i in (3, 1, 4, 0, 9, 5, 2, 8, 6, 7):
            arena.free(ptrs[i])
        assert arena.free_bytes == arena.size
        arena.alloc(arena.size)  # whole arena must be allocatable again


class TestBufferPtr:
    def test_view_roundtrip(self, arena):
        p = arena.alloc(64)
        p.view(np.float32)[:] = np.arange(16, dtype=np.float32)
        assert np.array_equal(p.to_array(np.float32), np.arange(16, dtype=np.float32))

    def test_view_is_zero_copy(self, arena):
        p = arena.alloc(16)
        v1 = p.view()
        v1[0] = 0xAB
        assert p.view()[0] == 0xAB

    def test_view_dtype_mismatch(self, arena):
        p = arena.alloc(10)
        with pytest.raises(ValueError):
            p.view(np.float64)

    def test_sub_pointer(self, arena):
        p = arena.alloc(100)
        p.view()[:] = np.arange(100, dtype=np.uint8)
        s = p.sub(10, 20)
        assert np.array_equal(s.view(), np.arange(10, 30, dtype=np.uint8))

    def test_sub_defaults_to_rest(self, arena):
        p = arena.alloc(100)
        assert p.sub(40).nbytes == 60

    def test_sub_out_of_range(self, arena):
        p = arena.alloc(100)
        with pytest.raises(ValueError):
            p.sub(90, 20)
        with pytest.raises(ValueError):
            p.sub(-1, 5)

    def test_fill_from_size_check(self, arena):
        p = arena.alloc(16)
        with pytest.raises(ValueError):
            p.fill_from(np.zeros(5, dtype=np.uint8))

    def test_fill_from_multidim(self, arena):
        p = arena.alloc(24)
        data = np.arange(6, dtype=np.float32).reshape(2, 3)
        p.fill_from(data)
        assert np.array_equal(p.to_array(np.float32, (2, 3)), data)

    def test_space_property(self, arena):
        assert arena.alloc(8).space == "device"


class TestStridedView:
    def test_strided_view_shape_and_content(self, arena):
        p = arena.alloc(64)
        p.view()[:] = np.arange(64, dtype=np.uint8)
        v = arena.strided_view(p.offset, pitch=16, width=4, height=3)
        assert v.shape == (3, 4)
        assert v[1, 0] == 16 and v[2, 3] == 35

    def test_strided_view_write_through(self, arena):
        p = arena.alloc(64)
        v = arena.strided_view(p.offset, pitch=16, width=4, height=4)
        v[:] = 7
        raw = p.view()
        assert raw[0] == 7 and raw[4] == 0 and raw[16] == 7

    def test_bounds_check(self, arena):
        with pytest.raises(InvalidPointerError):
            arena.strided_view(arena.size - 10, pitch=16, width=8, height=2)

    def test_last_partial_row_allowed(self, arena):
        # (height-1)*pitch + width fits even though height*pitch would not.
        off = arena.size - (2 * 16 + 8)
        arena.strided_view(off, pitch=16, width=8, height=3)

    def test_empty_view(self, arena):
        v = arena.strided_view(0, pitch=16, width=0, height=0)
        assert v.size == 0


@settings(max_examples=50)
@given(
    st.lists(
        st.tuples(st.integers(min_value=1, max_value=4096), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_allocator_never_overlaps_and_always_coalesces(ops):
    """Property: random alloc/free sequences keep invariants intact."""
    arena = Arena(1 << 20, space="host")
    live = []
    for size, do_free in ops:
        if do_free and live:
            arena.free(live.pop(len(live) // 2))
        else:
            try:
                live.append(arena.alloc(size))
            except OutOfMemoryError:
                pass
        spans = sorted((p.offset, p.end) for p in live)
        for (o1, e1), (o2, _) in zip(spans, spans[1:]):
            assert e1 <= o2, "allocations overlap"
    for p in live:
        arena.free(p)
    assert arena.free_bytes == arena.size
    assert arena.num_allocations == 0
