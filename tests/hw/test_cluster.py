"""Tests for nodes, GPUs and cluster wiring."""

import pytest

from repro.hw import Cluster, CopyKind, HardwareConfig


class TestNodeAndGpu:
    def test_cluster_builds_nodes_and_hcas(self):
        c = Cluster(4)
        assert c.num_nodes == 4
        for i, node in enumerate(c.nodes):
            assert node.node_id == i
            assert node.hca is not None
            assert node.hca.node is node
            assert len(node.gpus) == 1

    def test_cluster_needs_a_node(self):
        with pytest.raises(ValueError):
            Cluster(0)

    def test_multiple_gpus_per_node(self):
        c = Cluster(1, gpus_per_node=2)
        assert len(c.nodes[0].gpus) == 2
        assert c.nodes[0].gpus[0] is not c.nodes[0].gpus[1]

    def test_gpu_malloc_free(self):
        c = Cluster(1)
        gpu = c.nodes[0].gpu
        p = gpu.malloc(4096)
        assert gpu.owns(p)
        assert p.space == "device"
        gpu.free(p)

    def test_host_malloc(self):
        c = Cluster(1)
        p = c.nodes[0].malloc_host(4096)
        assert p.space == "host"
        c.nodes[0].free_host(p)

    def test_find_gpu(self):
        c = Cluster(1, gpus_per_node=2)
        node = c.nodes[0]
        p0 = node.gpus[0].malloc(128)
        p1 = node.gpus[1].malloc(128)
        host = node.malloc_host(128)
        assert node.find_gpu(p0) is node.gpus[0]
        assert node.find_gpu(p1) is node.gpus[1]
        assert node.find_gpu(host) is None

    def test_engine_mapping(self):
        c = Cluster(1)
        gpu = c.nodes[0].gpu
        assert gpu.engine_for(CopyKind.H2D) is gpu.pcie.h2d
        assert gpu.engine_for(CopyKind.D2H) is gpu.pcie.d2h
        assert gpu.engine_for(CopyKind.D2D) is gpu.exec_engine
        assert gpu.engine_for(CopyKind.D2H) is not gpu.engine_for(CopyKind.H2D)
        with pytest.raises(ValueError):
            gpu.engine_for(CopyKind.H2H)

    def test_shared_engine_ablation(self):
        c = Cluster(1, cfg=HardwareConfig.single_engine_gpu())
        gpu = c.nodes[0].gpu
        assert gpu.engine_for(CopyKind.H2D) is gpu.engine_for(CopyKind.D2H)
        assert gpu.engine_for(CopyKind.D2D) is gpu.engine_for(CopyKind.D2H)

    def test_separate_node_memories(self):
        c = Cluster(2)
        a = c.nodes[0].malloc_host(16)
        b = c.nodes[1].malloc_host(16)
        a.view()[:] = 1
        assert (b.view() == 0).all()

    def test_cluster_run_delegates_to_env(self):
        c = Cluster(1)
        done = []

        def proc():
            yield c.env.timeout(1.0)
            done.append(c.env.now)

        c.env.process(proc())
        c.run()
        assert done == [1.0]
