"""Unit tests for the baseline designs (Figure 2 schemes, Figures 4a/4b)."""

import numpy as np
import pytest

from repro.baselines import (
    PACK_SCHEMES,
    make_manual_pipeline_program,
    make_naive_program,
    manual_pipeline_latency,
    measure_all_schemes,
    measure_pack_scheme,
    naive_vector_latency,
)
from repro.hw import HardwareConfig, KiB, MiB
from repro.mpi import run_world


class TestPackSchemes:
    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            measure_pack_scheme("d2h_warp", 4096)

    def test_unaligned_size_rejected(self):
        with pytest.raises(ValueError):
            measure_pack_scheme("d2h_nc2nc", 4097)

    def test_all_schemes_positive_and_ordered_at_64k(self):
        r = measure_all_schemes(64 * KiB)
        assert set(r) == set(PACK_SCHEMES)
        assert all(v > 0 for v in r.values())
        assert r["d2d2h_nc2c2c"] < r["d2h_nc2nc"] < r["d2h_nc2c"]

    def test_crossover_below_1k(self):
        """Figure 2(a): the offloaded scheme loses for tiny messages
        (launch overheads dominate) and wins beyond ~1 KB."""
        tiny = measure_all_schemes(64)
        big = measure_all_schemes(4 * KiB)
        assert tiny["d2d2h_nc2c2c"] > tiny["d2h_nc2nc"]
        assert big["d2d2h_nc2c2c"] < big["d2h_nc2nc"]

    def test_verification_catches_data(self):
        # verify=True actually runs; equal results with verify off.
        a = measure_pack_scheme("d2h_nc2c", 4096, verify=True)
        b = measure_pack_scheme("d2h_nc2c", 4096, verify=False)
        assert a == b

    def test_custom_hardware_scales(self):
        slow = HardwareConfig.fermi_qdr().with_overrides(
            pcie_row_cost_nc2nc=1e-6
        )
        base = measure_pack_scheme("d2h_nc2nc", 64 * KiB)
        slowed = measure_pack_scheme("d2h_nc2nc", 64 * KiB, cfg=slow)
        assert slowed > 4 * base


class TestNaiveBaseline:
    def test_latency_positive_and_monotone(self):
        small = naive_vector_latency(4 * KiB, iterations=2)
        large = naive_vector_latency(256 * KiB, iterations=2)
        assert 0 < small < large

    def test_program_verifies_data(self):
        program = make_naive_program(rows=512, iterations=1, verify=True)
        times = run_world(program, 2)
        assert all(len(t) == 1 for t in times)

    def test_iterations_counted(self):
        program = make_naive_program(rows=64, iterations=3, verify=False)
        times = run_world(program, 2)
        assert len(times[0]) == 3


class TestManualPipeline:
    def test_close_to_library_latency(self):
        """Figure 5's central observation at one size."""
        from repro.bench import mv2_gpu_nc_latency

        manual = manual_pipeline_latency(1 * MiB, iterations=2)
        library = mv2_gpu_nc_latency(1 * MiB, iterations=2)
        assert library == pytest.approx(manual, rel=0.25)

    def test_program_moves_data_correctly(self):
        program = make_manual_pipeline_program(rows=1 << 14, iterations=1,
                                               verify=True)
        run_world(program, 2)  # internal asserts check the payload

    def test_chunk_size_sensitivity(self):
        coarse = manual_pipeline_latency(1 * MiB, chunk_bytes=1 * MiB,
                                         iterations=1, verify=False)
        tuned = manual_pipeline_latency(1 * MiB, chunk_bytes=64 * KiB,
                                        iterations=1, verify=False)
        assert tuned < coarse
