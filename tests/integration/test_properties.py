"""System-level property tests: the whole stack under random workloads."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GpuNcConfig
from repro.hw import Cluster, CopyKind, HardwareConfig
from repro.mpi import BYTE, Datatype, MpiWorld, run_world, wait_all
from repro.mpi.pack import pack_bytes


# -- random datatype trees through the full GPU pipeline ------------------------

@st.composite
def transfer_datatype(draw):
    """A committed datatype with a modest memory footprint."""
    base = Datatype.named(np.uint8)
    kind = draw(st.sampled_from(["vector", "hvector", "indexed", "subarray"]))
    if kind == "vector":
        count = draw(st.integers(1, 300))
        bl = draw(st.integers(1, 8))
        stride = draw(st.integers(bl, bl + 16))
        return Datatype.vector(count, bl, stride, base).commit()
    if kind == "hvector":
        count = draw(st.integers(1, 200))
        bl = draw(st.integers(1, 16))
        stride = draw(st.integers(bl, bl + 64))
        return Datatype.hvector(count, bl, stride, base).commit()
    if kind == "indexed":
        n = draw(st.integers(1, 20))
        bls = draw(st.lists(st.integers(1, 8), min_size=n, max_size=n))
        displs, cur = [], 0
        for bl in bls:
            cur += draw(st.integers(0, 16))
            displs.append(cur)
            cur += bl
        return Datatype.indexed(bls, displs, base).commit()
    rows = draw(st.integers(2, 40))
    cols = draw(st.integers(2, 40))
    sub_r = draw(st.integers(1, rows))
    sub_c = draw(st.integers(1, cols))
    start_r = draw(st.integers(0, rows - sub_r))
    start_c = draw(st.integers(0, cols - sub_c))
    return Datatype.subarray(
        [rows, cols], [sub_r, sub_c], [start_r, start_c], base
    ).commit()


@settings(max_examples=30, deadline=None)
@given(transfer_datatype(), st.integers(1, 3), st.booleans(), st.booleans())
def test_random_datatype_gpu_transfer_bit_exact(dtype, count, src_dev, dst_dev):
    """Any datatype, any buffer placement: delivered bytes are bit-exact."""
    span = max(dtype.span_for_count(count), 1)
    rng = np.random.default_rng(dtype.size * 131 + count)
    payload = rng.integers(0, 256, span, dtype=np.uint8)

    def program(ctx):
        alloc = (
            ctx.cuda.malloc
            if (src_dev if ctx.rank == 0 else dst_dev)
            else ctx.node.malloc_host
        )
        buf = alloc(span)
        if ctx.rank == 0:
            buf.view()[:] = payload
            yield from ctx.comm.Send(buf, count, dtype, dest=1)
            return pack_bytes(buf, dtype, count)
        else:
            yield from ctx.comm.Recv(buf, count, dtype, source=0)
            return pack_bytes(buf, dtype, count)

    sent, got = run_world(program, 2)
    assert np.array_equal(sent, got)


# -- random traffic schedules ---------------------------------------------------------

@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.integers(0, 2),               # src
            st.integers(0, 2),               # dst
            st.integers(0, 3),               # tag
            st.integers(1, 40_000),          # size bytes
            st.booleans(),                   # device buffer?
        ),
        min_size=1,
        max_size=12,
    )
)
def test_random_traffic_delivery_and_ordering(msgs):
    """A random batch of messages all arrives, bit-exact, and same-lane
    (src, dst, tag) messages arrive in send order."""
    lanes = {}
    for i, (src, dst, tag, size, dev) in enumerate(msgs):
        if src == dst:
            continue
        lanes.setdefault((src, dst, tag), []).append((i, size, dev))
    if not lanes:
        return

    def program(ctx):
        reqs = []
        send_payloads = {}
        recv_bufs = []
        for (src, dst, tag), items in lanes.items():
            for i, size, dev in items:
                alloc = ctx.cuda.malloc if dev else ctx.node.malloc_host
                if ctx.rank == src:
                    buf = alloc(size)
                    data = np.full(size, (i * 37 + 11) % 256, dtype=np.uint8)
                    buf.view()[:] = data
                    send_payloads[i] = data
                    reqs.append(ctx.comm.Isend(buf, size, BYTE, dest=dst, tag=tag))
                elif ctx.rank == dst:
                    buf = alloc(size)
                    recv_bufs.append((i, buf, size))
                    reqs.append(
                        ctx.comm.Irecv(buf, size, BYTE, source=src, tag=tag)
                    )
        yield from wait_all(reqs)
        out = {}
        for i, buf, size in recv_bufs:
            out[i] = buf.view()[:size].copy()
        return out

    results = run_world(program, 3)
    for (src, dst, tag), items in lanes.items():
        # Non-overtaking: receives posted in order match sends in order,
        # so received payload k must equal sent payload k of the lane.
        got = results[dst]
        for i, size, dev in items:
            expect = np.full(size, (i * 37 + 11) % 256, dtype=np.uint8)
            assert np.array_equal(got[i], expect), (
                f"lane {(src, dst, tag)} message {i} corrupted or reordered"
            )


# -- determinism -------------------------------------------------------------------------

def _timed_run(seed_sizes):
    def program(ctx):
        reqs = []
        for tag, size in enumerate(seed_sizes):
            buf = ctx.cuda.malloc(size)
            if ctx.rank == 0:
                reqs.append(ctx.comm.Isend(buf, size, BYTE, dest=1, tag=tag))
            else:
                reqs.append(ctx.comm.Irecv(buf, size, BYTE, source=0, tag=tag))
        yield from wait_all(reqs)
        return ctx.now

    return run_world(program, 2)


def test_simulation_is_deterministic():
    """Two identical runs finish at the exact same simulated instant."""
    sizes = [1000, 70_000, 256, 1 << 20, 4096]
    assert _timed_run(sizes) == _timed_run(sizes)


@given(st.lists(st.integers(1, 200_000), min_size=1, max_size=6))
@settings(max_examples=10, deadline=None)
def test_determinism_random_workloads(sizes):
    assert _timed_run(sizes) == _timed_run(sizes)


# -- the paper's pipeline latency model ---------------------------------------------------

class TestPipelineLatencyModel:
    def test_n_plus_2_law(self):
        """Section IV-B: pipelined latency ~= (n+2) * T_d2d_nc2c(N/n) when
        the device pack stage dominates (which it does for 4-byte-row
        vectors). Check the simulator against the paper's analytic model."""
        cfg = HardwareConfig.fermi_qdr()
        gpu_cfg = GpuNcConfig()
        message = 4 << 20
        rows = message // 4
        chunk = gpu_cfg.chunk_bytes
        n = message // chunk
        rows_per_chunk = rows // n
        t_pack = cfg.memcpy2d_time(CopyKind.D2D, 4, rows_per_chunk, 8, 4)
        model = (n + 2) * t_pack

        from repro.bench import mv2_gpu_nc_latency

        measured = mv2_gpu_nc_latency(message, iterations=2, verify=False)
        assert measured == pytest.approx(model, rel=0.15)

    def test_pipeline_beats_single_chunk(self):
        """Chunking must beat a whole-message 'pipeline' of one chunk."""
        from repro.bench import mv2_gpu_nc_latency

        message = 1 << 20
        chunked = mv2_gpu_nc_latency(message, iterations=2, verify=False)
        single = mv2_gpu_nc_latency(
            message, iterations=2, verify=False,
            gpu_config=GpuNcConfig(chunk_bytes=message),
        )
        assert chunked < single


# -- concurrent stress ------------------------------------------------------------------

def test_many_concurrent_gpu_messages():
    """32 simultaneous pipelined transfers between 4 ranks stay correct."""
    size = 192 * 1024  # 3 chunks each

    def program(ctx):
        reqs = []
        bufs = []
        for tag in range(8):
            for peer in range(ctx.size):
                if peer == ctx.rank:
                    continue
                sbuf = ctx.cuda.malloc(size)
                sbuf.view()[:4] = (ctx.rank * 8 + tag) % 256
                reqs.append(ctx.comm.Isend(sbuf, size, BYTE, dest=peer, tag=tag))
                rbuf = ctx.cuda.malloc(size)
                bufs.append((peer, tag, rbuf))
                reqs.append(
                    ctx.comm.Irecv(rbuf, size, BYTE, source=peer, tag=tag)
                )
        yield from wait_all(reqs)
        for peer, tag, rbuf in bufs:
            expect = (peer * 8 + tag) % 256
            assert rbuf.view()[0] == expect
        return True

    assert all(run_world(program, 4))
