"""Tests for stream FIFO semantics, engines and CUDA events."""

import pytest

from repro.hw import Cluster
from repro.cuda import CudaContext, Stream


@pytest.fixture
def ctx():
    cluster = Cluster(1)
    return CudaContext(cluster.env, cluster.cfg, cluster.nodes[0], tracer=cluster.tracer)


def run(env, gen):
    return env.run(env.process(gen))


class TestStreamFifo:
    def test_ops_in_stream_serialize(self, ctx):
        env = ctx.env
        s = ctx.stream()
        order = []
        s.enqueue(ctx.gpu.exec_engine, 2.0, lambda: order.append(("a", env.now)))
        s.enqueue(ctx.gpu.exec_engine, 1.0, lambda: order.append(("b", env.now)))
        env.run()
        assert order == [("a", 2.0), ("b", 3.0)]

    def test_different_streams_same_engine_contend(self, ctx):
        env = ctx.env
        s1, s2 = ctx.stream(), ctx.stream()
        done = []
        s1.enqueue(ctx.gpu.exec_engine, 2.0, lambda: done.append(env.now))
        s2.enqueue(ctx.gpu.exec_engine, 2.0, lambda: done.append(env.now))
        env.run()
        assert done == [2.0, 4.0]  # engine serializes across streams

    def test_different_streams_different_engines_overlap(self, ctx):
        env = ctx.env
        s1, s2 = ctx.stream(), ctx.stream()
        done = []
        s1.enqueue(ctx.gpu.pcie.d2h, 2.0, lambda: done.append(("d2h", env.now)))
        s2.enqueue(ctx.gpu.pcie.h2d, 2.0, lambda: done.append(("h2d", env.now)))
        env.run()
        assert sorted(done) == [("d2h", 2.0), ("h2d", 2.0)]

    def test_query_false_while_pending(self, ctx):
        env = ctx.env
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 5.0)
        seen = []

        def observer():
            yield env.timeout(1.0)
            seen.append(s.query())
            yield env.timeout(5.0)
            seen.append(s.query())

        run(env, observer())
        assert seen == [False, True]

    def test_fresh_stream_query_true(self, ctx):
        assert ctx.stream().query()

    def test_pending_ops_counter(self, ctx):
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 1.0)
        s.enqueue(ctx.gpu.exec_engine, 1.0)
        assert s.pending_ops == 2
        ctx.env.run()
        assert s.pending_ops == 0

    def test_synchronize_waits(self, ctx):
        env = ctx.env
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 3.0)

        def waiter():
            yield from s.synchronize()
            return env.now

        assert run(env, waiter()) == 3.0

    def test_synchronize_on_idle_stream_is_instant(self, ctx):
        env = ctx.env
        s = ctx.stream()

        def waiter():
            yield from s.synchronize()
            return env.now

        assert run(env, waiter()) == 0.0

    def test_negative_duration_rejected(self, ctx):
        with pytest.raises(ValueError):
            ctx.stream().enqueue(ctx.gpu.exec_engine, -1.0)

    def test_apply_fn_runs_at_completion_not_enqueue(self, ctx):
        env = ctx.env
        s = ctx.stream()
        sideeffect = []
        s.enqueue(ctx.gpu.exec_engine, 4.0, lambda: sideeffect.append(env.now))
        assert sideeffect == []
        env.run()
        assert sideeffect == [4.0]


class TestCudaEvent:
    def test_record_and_query(self, ctx):
        env = ctx.env
        s = ctx.stream()
        ev = ctx.event()
        s.enqueue(ctx.gpu.exec_engine, 2.0)
        ev.record(s)
        s.enqueue(ctx.gpu.exec_engine, 2.0)  # after the record point
        seen = []

        def observer():
            yield env.timeout(2.5)
            seen.append(ev.query())  # first op done -> event complete
            seen.append(s.query())  # second op still running

        run(env, observer())
        assert seen == [True, False]

    def test_unrecorded_event_query_raises(self, ctx):
        ev = ctx.event()
        with pytest.raises(RuntimeError):
            ev.query()
        with pytest.raises(RuntimeError):
            list(ev.synchronize())

    def test_event_synchronize(self, ctx):
        env = ctx.env
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 3.0)
        ev = ctx.event()
        ev.record(s)

        def waiter():
            yield from ev.synchronize()
            return env.now

        assert run(env, waiter()) == 3.0

    def test_recorded_flag(self, ctx):
        ev = ctx.event()
        assert not ev.recorded
        ev.record(ctx.stream())
        assert ev.recorded


class TestEventTiming:
    def test_elapsed_time_measures_stream_work(self, ctx):
        env = ctx.env
        s = ctx.stream()
        start = ctx.event("start")
        start.record(s)  # empty stream: completes at record time
        s.enqueue(ctx.gpu.exec_engine, 2.5)
        end = ctx.event("end")
        end.record(s)
        env.run()
        assert start.elapsed_time(end) == pytest.approx(2.5)

    def test_elapsed_time_requires_completion(self, ctx):
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 5.0)
        ev = ctx.event()
        ev.record(s)
        with pytest.raises(RuntimeError, match="not completed"):
            _ = ev.completion_time

    def test_completion_time_of_empty_stream_is_record_time(self, ctx):
        env = ctx.env
        s = ctx.stream()
        s.enqueue(ctx.gpu.exec_engine, 1.0)
        env.run()
        ev = ctx.event()
        ev.record(s)
        assert ev.completion_time == env.now

    def test_microbenchmark_pattern(self, ctx):
        """Time a D2D pack exactly how the paper's microbenchmarks did:
        record, launch, record, elapsed."""
        env = ctx.env
        src = ctx.malloc(1 << 16)
        dst = ctx.malloc(1 << 15)
        s = ctx.stream()
        t0 = ctx.event()
        t0.record(s)
        ctx.memcpy2d_async(dst, 4, src, 8, 4, 1 << 13, stream=s)
        t1 = ctx.event()
        t1.record(s)
        env.run()
        from repro.hw import CopyKind

        expect = ctx.cfg.memcpy2d_time(CopyKind.D2D, 4, 1 << 13, 8, 4)
        assert t0.elapsed_time(t1) == pytest.approx(expect)
