"""Tests for the memcpy family: correctness, timing, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cuda import CudaContext, CudaInvalidMemcpyDirection, CudaInvalidValue, CudaOutOfMemory
from repro.hw import Cluster, CopyKind


@pytest.fixture
def ctx():
    cluster = Cluster(1)
    return CudaContext(cluster.env, cluster.cfg, cluster.nodes[0], tracer=cluster.tracer)


def run(env, gen):
    return env.run(env.process(gen))


class TestMemcpy1D:
    def test_h2d_d2h_roundtrip(self, ctx):
        data = np.arange(256, dtype=np.float64)
        hsrc = ctx.malloc_host(data.nbytes)
        dbuf = ctx.malloc(data.nbytes)
        hdst = ctx.malloc_host(data.nbytes)
        hsrc.fill_from(data)

        def program():
            yield from ctx.memcpy(dbuf, hsrc)
            yield from ctx.memcpy(hdst, dbuf)

        run(ctx.env, program())
        assert np.array_equal(hdst.to_array(np.float64), data)

    def test_blocking_memcpy_takes_expected_time(self, ctx):
        n = 1 << 20
        hsrc = ctx.malloc_host(n)
        dbuf = ctx.malloc(n)

        def program():
            yield from ctx.memcpy(dbuf, hsrc)
            return ctx.env.now

        t = run(ctx.env, program())
        expected = ctx.cfg.memcpy_time(CopyKind.H2D, n) + ctx.cfg.cuda_sync_overhead
        assert t == pytest.approx(expected)

    def test_async_copy_data_lands_at_completion(self, ctx):
        env = ctx.env
        n = 1 << 20
        hsrc = ctx.malloc_host(n)
        hsrc.view()[:] = 0xCD
        dbuf = ctx.malloc(n)
        done = ctx.memcpy_async(dbuf, hsrc)
        observed = []

        def observer():
            yield env.timeout(1e-9)
            observed.append(int(dbuf.view()[0]))  # mid-flight: still zero
            yield done
            observed.append(int(dbuf.view()[0]))

        run(env, observer())
        assert observed == [0, 0xCD]

    def test_partial_copy_with_nbytes(self, ctx):
        hsrc = ctx.malloc_host(64)
        hsrc.view()[:] = 9
        dbuf = ctx.malloc(64)
        done = ctx.memcpy_async(dbuf, hsrc, nbytes=16)
        ctx.env.run()
        assert done.processed
        assert (dbuf.view()[:16] == 9).all()
        assert (dbuf.view()[16:] == 0).all()

    def test_oversize_copy_rejected(self, ctx):
        hsrc = ctx.malloc_host(16)
        dbuf = ctx.malloc(8)
        with pytest.raises(CudaInvalidValue):
            ctx.memcpy_async(dbuf, hsrc)

    def test_kind_mismatch_rejected(self, ctx):
        hsrc = ctx.malloc_host(16)
        dbuf = ctx.malloc(16)
        with pytest.raises(CudaInvalidMemcpyDirection):
            ctx.memcpy_async(dbuf, hsrc, kind=CopyKind.D2H)

    def test_oom_maps_to_cuda_error(self, ctx):
        with pytest.raises(CudaOutOfMemory):
            ctx.malloc(ctx.cfg.device_memory_bytes * 2)

    def test_d2h_and_h2d_overlap_on_separate_engines(self, ctx):
        env = ctx.env
        n = 1 << 22
        h1, h2 = ctx.malloc_host(n), ctx.malloc_host(n)
        d1, d2 = ctx.malloc(n), ctx.malloc(n)
        s1, s2 = ctx.stream(), ctx.stream()

        def program():
            e1 = ctx.memcpy_async(d1, h1, stream=s1)  # H2D
            e2 = ctx.memcpy_async(h2, d2, stream=s2)  # D2H
            yield e1 & e2
            return env.now

        t = run(env, program())
        one_way = ctx.cfg.memcpy_time(CopyKind.H2D, n)
        assert t == pytest.approx(one_way, rel=0.01)  # overlapped, not 2x


class TestMemcpy2D:
    def test_pack_columns_d2d(self, ctx):
        """Flatten a strided column into a contiguous buffer (the paper's
        'D2D nc2c' pack step) and verify the bytes."""
        rows, pitch, width = 8, 32, 4
        src = ctx.malloc(rows * pitch)
        raw = np.arange(rows * pitch, dtype=np.uint8)
        src.fill_from(raw)
        dst = ctx.malloc(rows * width)

        def program():
            yield from ctx.memcpy2d(dst, width, src, pitch, width, rows)

        run(ctx.env, program())
        expected = raw.reshape(rows, pitch)[:, :width].reshape(-1)
        assert np.array_equal(dst.view(), expected)

    def test_unpack_c2nc(self, ctx):
        rows, pitch, width = 8, 32, 4
        src = ctx.malloc(rows * width)
        src.fill_from(np.arange(rows * width, dtype=np.uint8))
        dst = ctx.malloc(rows * pitch)

        def program():
            yield from ctx.memcpy2d(dst, pitch, src, width, width, rows)

        run(ctx.env, program())
        out = dst.to_array(np.uint8).reshape(rows, pitch)
        assert np.array_equal(out[:, :width].reshape(-1), src.view())
        assert (out[:, width:] == 0).all()

    def test_nc2nc_preserves_stride_structure(self, ctx):
        rows, pitch, width = 4, 16, 4
        src = ctx.malloc(rows * pitch)
        src.fill_from(np.arange(rows * pitch, dtype=np.uint8))
        hdst = ctx.malloc_host(rows * pitch)

        def program():
            yield from ctx.memcpy2d(hdst, pitch, src, pitch, width, rows)

        run(ctx.env, program())
        out = hdst.to_array(np.uint8).reshape(rows, pitch)
        srcv = src.to_array(np.uint8).reshape(rows, pitch)
        assert np.array_equal(out[:, :width], srcv[:, :width])
        assert (out[:, width:] == 0).all()

    def test_width_exceeding_pitch_rejected(self, ctx):
        src = ctx.malloc(1024)
        dst = ctx.malloc(1024)
        with pytest.raises(CudaInvalidValue):
            ctx.memcpy2d_async(dst, 8, src, 8, 16, 4)

    def test_region_exceeding_buffer_rejected(self, ctx):
        src = ctx.malloc(64)
        dst = ctx.malloc(1024)
        with pytest.raises(CudaInvalidValue):
            ctx.memcpy2d_async(dst, 32, src, 32, 8, 4)  # needs 3*32+8 > 64

    def test_strided_pcie_slower_than_device_pack(self, ctx):
        """The core observation of Section IV-A at the API level."""
        env = ctx.env
        rows, width = 1024, 4
        pitch = 8
        dsrc = ctx.malloc(rows * pitch)
        hdst = ctx.malloc_host(rows * pitch)
        dtmp = ctx.malloc(rows * width)
        hflat = ctx.malloc_host(rows * width)

        def nc2nc():
            t0 = env.now
            yield from ctx.memcpy2d(hdst, pitch, dsrc, pitch, width, rows)
            return env.now - t0

        def d2d2h():
            t0 = env.now
            yield from ctx.memcpy2d(dtmp, width, dsrc, pitch, width, rows)
            yield from ctx.memcpy(hflat, dtmp)
            return env.now - t0

        t_nc2nc = run(env, nc2nc())
        t_d2d2h = run(env, d2d2h())
        assert t_d2d2h < t_nc2nc / 3

    @settings(max_examples=25, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=64),
        width=st.integers(min_value=1, max_value=32),
        extra_pitch=st.integers(min_value=0, max_value=32),
    )
    def test_2d_copy_matches_numpy_reference(self, rows, width, extra_pitch):
        cluster = Cluster(1)
        ctx = CudaContext(cluster.env, cluster.cfg, cluster.nodes[0])
        pitch = width + extra_pitch
        rng = np.random.default_rng(rows * 1000 + width * 10 + extra_pitch)
        raw = rng.integers(0, 256, rows * pitch, dtype=np.uint8)
        src = ctx.malloc(rows * pitch)
        src.fill_from(raw)
        dst = ctx.malloc(rows * width)

        def program():
            yield from ctx.memcpy2d(dst, width, src, pitch, width, rows)

        cluster.env.run(cluster.env.process(program()))
        expected = raw.reshape(rows, pitch)[:, :width].reshape(-1)
        assert np.array_equal(dst.view(), expected)


class TestKernelLaunch:
    def test_kernel_applies_effect_after_duration(self, ctx):
        env = ctx.env
        buf = ctx.malloc(16)
        done = ctx.launch_kernel(1e6, apply_fn=lambda: buf.view().fill(3))

        def program():
            yield done
            return env.now

        t = run(env, program())
        assert t == pytest.approx(ctx.cfg.kernel_time(1e6))
        assert (buf.view() == 3).all()

    def test_kernel_serializes_with_d2d_on_exec_engine(self, ctx):
        env = ctx.env
        a, b = ctx.malloc(1 << 20), ctx.malloc(1 << 20)
        s1, s2 = ctx.stream(), ctx.stream()
        k = ctx.launch_kernel(1e7, stream=s1)
        c = ctx.memcpy_async(b, a, stream=s2)  # D2D -> exec engine

        def program():
            yield k & c
            return env.now

        t = run(env, program())
        serial = ctx.cfg.kernel_time(1e7) + ctx.cfg.memcpy_time(CopyKind.D2D, 1 << 20)
        assert t == pytest.approx(serial)


class TestContextValidation:
    def test_foreign_device_pointer_rejected(self):
        cluster = Cluster(1, gpus_per_node=2)
        node = cluster.nodes[0]
        ctx0 = CudaContext(cluster.env, cluster.cfg, node, gpu=node.gpus[0])
        foreign = node.gpus[1].malloc(16)
        mine = ctx0.malloc(16)
        with pytest.raises(CudaInvalidValue):
            ctx0.memcpy_async(mine, foreign)

    def test_foreign_host_pointer_rejected(self):
        cluster = Cluster(2)
        ctx0 = CudaContext(cluster.env, cluster.cfg, cluster.nodes[0])
        other_host = cluster.nodes[1].malloc_host(16)
        dbuf = ctx0.malloc(16)
        with pytest.raises(CudaInvalidValue):
            ctx0.memcpy_async(dbuf, other_host)

    def test_gpu_node_mismatch_rejected(self):
        cluster = Cluster(2)
        with pytest.raises(CudaInvalidValue):
            CudaContext(
                cluster.env, cluster.cfg, cluster.nodes[0], gpu=cluster.nodes[1].gpu
            )

    def test_device_synchronize_waits_all_streams(self, ctx):
        env = ctx.env
        s1, s2 = ctx.stream(), ctx.stream()
        s1.enqueue(ctx.gpu.pcie.d2h, 2.0)
        s2.enqueue(ctx.gpu.pcie.h2d, 3.0)

        def program():
            yield from ctx.device_synchronize()
            return env.now

        t = run(env, program())
        assert t == pytest.approx(3.0 + ctx.cfg.cuda_sync_overhead)
