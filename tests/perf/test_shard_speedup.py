"""Perf guard: the sharded engine's wall-clock pins in ``BENCH_shard.json``.

The shard ledger is a *comparison* ledger: ``before`` is the sequential
wall-clock and ``after`` the sharded wall-clock of the same ``scale``-
experiment run, so ``speedup`` is the real parallel speedup. Parallel
speedup is physically bounded by the host's cores -- the shard workers
are OS processes -- so every entry records ``cores`` and the 1.5x gate
applies only where the recording host actually had a core per shard.
On narrower hosts (CI runners are routinely 1-2 cores) a wall-clock
target would be noise, so the guard instead re-measures the smallest
weak-scaling point fresh and fails if its speedup ratio collapsed to
less than half the pinned value.
"""

import time

import pytest

from repro.apps.stencil2d import StencilConfig, run_stencil
from repro.perf.hotpath import load, shard_file

pytestmark = pytest.mark.perf


def _entries():
    data = load(shard_file())
    experiments = data.get("experiments", {})
    if not experiments:
        pytest.skip("no entries recorded in BENCH_shard.json")
    return experiments


def test_every_entry_records_cores():
    for key, entry in _entries().items():
        assert "cores" in entry, (
            f"{key}: shard ledger entry lacks 'cores' -- wall-clock pins "
            f"are uninterpretable without the recording host's core count"
        )
        assert entry.get("shards", 0) >= 2, f"{key}: not a sharded run?"


def test_speedup_gate_where_cores_allow():
    """>= 1.5x parallel speedup wherever the host had a core per shard."""
    gated = 0
    for key, entry in _entries().items():
        if entry["cores"] < entry["shards"]:
            continue  # oversubscribed host: wall-clock gate is meaningless
        gated += 1
        assert entry["speedup"] >= 1.5, (
            f"{key}: {entry['shards']}-way sharding on a "
            f"{entry['cores']}-core host yielded only "
            f"{entry['speedup']}x (gate: 1.5x)"
        )
    if gated == 0:
        pytest.skip(
            "all entries recorded on hosts with fewer cores than shards; "
            "ratio-regression guard covers this case"
        )


def test_smallest_point_ratio_not_collapsed():
    """Fresh re-measurement of scale8:quick vs its pinned ratio.

    Catches engine regressions that survive on any host: whatever the
    core count, the sequential/sharded ratio measured *now* must not
    collapse far below the ratio pinned on the same class of host. The
    floor is deliberately loose (0.35x, best-of-3): the workload is
    ~100 ms, and on an oversubscribed single-core host a ratio this
    small jitters by 2x run to run -- the guard is for order-of-
    magnitude collapses (a reintroduced per-window round-trip), not for
    scheduling noise.
    """
    entry = _entries().get("scale8:quick")
    if entry is None:
        pytest.skip("scale8:quick not pinned in BENCH_shard.json")
    cfg = StencilConfig(4, 2, 64, 4096, iterations=2, functional=False)
    best = 0.0
    for _ in range(3):
        start = time.perf_counter()
        seq = run_stencil(cfg)
        seq_wall = time.perf_counter() - start
        start = time.perf_counter()
        shd = run_stencil(cfg, shards=entry["shards"])
        shard_wall = time.perf_counter() - start
        assert shd.iteration_times == seq.iteration_times, (
            "shard invariance broken on scale8:quick re-measurement"
        )
        best = max(best, seq_wall / shard_wall)
    floor = 0.35 * entry["speedup"]
    assert best >= floor, (
        f"scale8:quick speedup collapsed: measured {best:.2f}x vs pinned "
        f"{entry['speedup']}x (floor: {floor:.2f}x)"
    )
