"""Perf guard: pack throughput must stay within 30% of the recorded number.

The reference lives in ``BENCH_hotpath.json`` (``pack_throughput``),
written by the benchmark harness on the machine that recorded it. The
measurement below replays exactly that workload: a chunked pack of a
strided byte vector through the cached segment-compilation path.
"""

import time

import pytest

from repro.hw.memory import Arena
from repro.mpi import BYTE, Datatype
from repro.mpi.pack import pack_range_bytes
from repro.perf.hotpath import load

pytestmark = pytest.mark.perf

ROWS, WIDTH, PITCH = 1 << 16, 4, 8
CHUNK = 64 * 1024


def measure_pack_throughput(repeats: int = 5) -> float:
    """Best-of-N bytes/second for the reference chunked-pack workload."""
    vec = Datatype.hvector(ROWS, WIDTH, PITCH, BYTE).commit()
    arena = Arena(ROWS * PITCH, "host", "perf-test")
    buf = arena.alloc(ROWS * PITCH)
    total = vec.size
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        for lo in range(0, total, CHUNK):
            pack_range_bytes(buf, vec, 1, lo, min(lo + CHUNK, total))
        elapsed = time.perf_counter() - start
        best = max(best, total / elapsed)
    return best


def test_pack_throughput_within_30_percent_of_recorded():
    ref = load().get("pack_throughput")
    if not ref or "bytes_per_second" not in ref:
        pytest.skip("no pack_throughput recorded in BENCH_hotpath.json")
    measured = measure_pack_throughput()
    floor = 0.7 * ref["bytes_per_second"]
    assert measured >= floor, (
        f"pack throughput regressed >30%: {measured / 1e6:.1f} MB/s vs "
        f"recorded {ref['bytes_per_second'] / 1e6:.1f} MB/s "
        f"({ref.get('workload', '?')})"
    )
