"""Perf guard: simulator event throughput within 30% of the recorded number.

The reference lives in ``BENCH_hotpath.json`` (``sim_throughput``), written
by ``benchmarks/bench_sim_throughput.py`` on the machine that recorded it.
The measurement below replays exactly that workload: a mesh of
timeout-driven processes, half through the zero-delay immediate lane and
half through the event heap, with Timeout pooling enabled.
"""

import time

import pytest

from repro.perf.hotpath import load
from repro.sim import Environment

pytestmark = pytest.mark.perf

CHAINS = 64
DEPTH = 2_000


def measure_sim_throughput(repeats: int = 5) -> float:
    """Best-of-N events/second for the reference timeout-mesh workload."""
    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def chain(i):
            delay = 0.0 if i % 2 == 0 else 1e-6 * (1 + i)
            for _ in range(DEPTH):
                yield env.timeout(delay)

        start = time.perf_counter()
        for i in range(CHAINS):
            env.process(chain(i), name=f"chain{i}")
        env.run()
        elapsed = time.perf_counter() - start
        best = max(best, env._eid / elapsed)
    return best


def test_sim_throughput_within_30_percent_of_recorded():
    ref = load().get("sim_throughput")
    if not ref or "events_per_second" not in ref:
        pytest.skip("no sim_throughput recorded in BENCH_hotpath.json")
    measured = measure_sim_throughput()
    floor = 0.7 * ref["events_per_second"]
    assert measured >= floor, (
        f"sim throughput regressed >30%: {measured / 1e6:.2f}M events/s vs "
        f"recorded {ref['events_per_second'] / 1e6:.2f}M events/s "
        f"({ref.get('workload', '?')})"
    )


def test_event_wheel_not_slower_than_heap_on_fig5():
    """The calendar wheel must be neutral-to-better on a paper workload.

    Both sides are measured fresh on this host (best-of-5 each), so the
    comparison is immune to cross-machine drift; the pinned pair in
    ``BENCH_hotpath.json`` (written by the benchmark) gates whether the
    guard runs at all, and a generous 2x ceiling against the pinned heap
    number additionally catches gross same-class-host regressions.
    """
    ref = load().get("wheel_baseline")
    if not ref or "heap_seconds" not in ref:
        pytest.skip("no wheel_baseline recorded in BENCH_hotpath.json")
    import sys
    from pathlib import Path

    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    sys.path.insert(0, str(bench_dir))
    try:
        from bench_sim_throughput import measure_fig5_wallclock
    finally:
        sys.path.remove(str(bench_dir))
    wheel = measure_fig5_wallclock(True)
    heap = measure_fig5_wallclock(False)
    assert wheel <= 1.25 * heap, (
        f"event wheel pessimizes fig5:quick: {wheel:.3f}s with wheel vs "
        f"{heap:.3f}s pure heap (allowed: 1.25x for timer jitter)"
    )
    assert wheel <= 2.0 * ref["heap_seconds"], (
        f"fig5:quick with wheel took {wheel:.3f}s vs pinned heap baseline "
        f"{ref['heap_seconds']}s ({ref.get('workload', '?')})"
    )
