"""Perf guard: simulator event throughput within 30% of the recorded number.

The reference lives in ``BENCH_hotpath.json`` (``sim_throughput``), written
by ``benchmarks/bench_sim_throughput.py`` on the machine that recorded it.
The measurement below replays exactly that workload: a mesh of
timeout-driven processes, half through the zero-delay immediate lane and
half through the event heap, with Timeout pooling enabled.
"""

import time

import pytest

from repro.perf.hotpath import load
from repro.sim import Environment

pytestmark = pytest.mark.perf

CHAINS = 64
DEPTH = 2_000


def measure_sim_throughput(repeats: int = 5) -> float:
    """Best-of-N events/second for the reference timeout-mesh workload."""
    best = 0.0
    for _ in range(repeats):
        env = Environment()

        def chain(i):
            delay = 0.0 if i % 2 == 0 else 1e-6 * (1 + i)
            for _ in range(DEPTH):
                yield env.timeout(delay)

        start = time.perf_counter()
        for i in range(CHAINS):
            env.process(chain(i), name=f"chain{i}")
        env.run()
        elapsed = time.perf_counter() - start
        best = max(best, env._eid / elapsed)
    return best


def test_sim_throughput_within_30_percent_of_recorded():
    ref = load().get("sim_throughput")
    if not ref or "events_per_second" not in ref:
        pytest.skip("no sim_throughput recorded in BENCH_hotpath.json")
    measured = measure_sim_throughput()
    floor = 0.7 * ref["events_per_second"]
    assert measured >= floor, (
        f"sim throughput regressed >30%: {measured / 1e6:.2f}M events/s vs "
        f"recorded {ref['events_per_second'] / 1e6:.2f}M events/s "
        f"({ref.get('workload', '?')})"
    )
