"""The perf-stats counters, footer, and BENCH_hotpath.json emitter."""

import json

from repro.bench.report import perf_stats_footer
from repro.perf import hotpath
from repro.perf.stats import PERF, PerfStats


def test_counters_and_hit_rate():
    stats = PerfStats()
    stats.bump("seg_cache_miss")
    stats.bump("seg_cache_hit", 3)
    assert stats.hit_rate("seg") == 0.75
    assert stats.hit_rate("slice") == 0.0
    snap = stats.snapshot()
    assert snap == {"seg_cache_miss": 1, "seg_cache_hit": 3}
    stats.reset()
    assert stats.snapshot() == {}
    stats.merge(snap)
    stats.merge(snap)
    assert stats.counters["seg_cache_hit"] == 6


def test_footer_is_one_line():
    stats = PerfStats()
    stats.bump("seg_cache_hit", 99)
    stats.bump("seg_cache_miss", 1)
    stats.bump("gather_2d", 7)
    line = stats.footer()
    assert "\n" not in line
    assert "seg-cache 99% hit (99/100)" in line
    assert line.startswith("[perf:")


def test_report_footer_accepts_snapshot():
    line = perf_stats_footer({"seg_cache_hit": 1, "seg_cache_miss": 1})
    assert "seg-cache 50% hit (1/2)" in line
    # Without a snapshot it reads the global counters.
    assert perf_stats_footer().startswith("[perf:")
    assert isinstance(PERF.snapshot(), dict)


def test_hotpath_emitter_pins_before_and_tracks_after(tmp_path):
    path = tmp_path / "BENCH_hotpath.json"
    entry = hotpath.record_wallclock("figX", "quick", 2.0, path=path)
    assert entry == {"before": 2.0, "after": 2.0, "speedup": 1.0}
    entry = hotpath.record_wallclock("figX", "quick", 0.5, path=path)
    assert entry["before"] == 2.0  # pinned baseline never overwritten
    assert entry["after"] == 0.5
    assert entry["speedup"] == 4.0
    data = json.loads(path.read_text())
    assert data["experiments"]["figX:quick"]["speedup"] == 4.0


def test_hotpath_pack_throughput_roundtrip(tmp_path):
    path = tmp_path / "BENCH_hotpath.json"
    hotpath.record_pack_throughput(1.5e9, "test workload", path=path)
    data = hotpath.load(path)
    assert data["pack_throughput"]["bytes_per_second"] == 1.5e9
    assert data["pack_throughput"]["workload"] == "test workload"


def test_load_missing_file_is_empty(tmp_path):
    assert hotpath.load(tmp_path / "nope.json") == {
        "schema": 1, "experiments": {},
    }
