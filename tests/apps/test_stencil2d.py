"""Tests for the Stencil2D port: numerics, decomposition, instrumentation."""

import numpy as np
import pytest

from repro.apps import (
    StencilConfig,
    analyze_complexity,
    reference_stencil,
    run_stencil,
)
from repro.apps.stencil2d import _initial_global, _stencil_apply


def assemble(cfg, res):
    got = np.zeros(
        (cfg.grid_rows * cfg.local_rows, cfg.grid_cols * cfg.local_cols),
        dtype=cfg.np_dtype,
    )
    for r in range(cfg.nprocs):
        pr, pc = cfg.position(r)
        got[
            pr * cfg.local_rows : (pr + 1) * cfg.local_rows,
            pc * cfg.local_cols : (pc + 1) * cfg.local_cols,
        ] = res.interiors[r]
    return got


class TestConfigValidation:
    def test_bad_grid(self):
        with pytest.raises(ValueError):
            StencilConfig(0, 2, 8, 8)

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            StencilConfig(1, 2, 8, 8, variant="magic")

    def test_bad_dtype(self):
        with pytest.raises(ValueError):
            StencilConfig(1, 2, 8, 8, dtype="int8")

    def test_neighbors_interior(self):
        cfg = StencilConfig(3, 3, 4, 4)
        assert cfg.neighbors(4) == {"north": 1, "south": 7, "west": 3, "east": 5}

    def test_neighbors_corner(self):
        cfg = StencilConfig(2, 2, 4, 4)
        assert cfg.neighbors(0) == {"south": 2, "east": 1}
        assert cfg.neighbors(3) == {"north": 1, "west": 2}

    def test_neighbors_1d_grids(self):
        row = StencilConfig(1, 4, 4, 4)
        assert set(row.neighbors(1)) == {"west", "east"}
        col = StencilConfig(4, 1, 4, 4)
        assert set(col.neighbors(1)) == {"north", "south"}


class TestReferenceKernel:
    def test_stencil_apply_uniform_field(self):
        a = np.ones((6, 6), dtype=np.float64)
        _stencil_apply(a)
        # Uniform interior point: 0.25 + 4*0.15 + 4*0.05 = 1.05.
        assert a[2, 2] == pytest.approx(1.05)

    def test_reference_preserves_shape_and_dtype(self):
        init = np.random.default_rng(1).random((8, 10)).astype(np.float32)
        out = reference_stencil(init, 3)
        assert out.shape == init.shape and out.dtype == init.dtype

    def test_zero_boundary_condition(self):
        init = np.zeros((4, 4), dtype=np.float64)
        init[:] = 1.0
        out = reference_stencil(init, 1)
        # Corners see 3 zero-ring cardinal/diagonal neighbours.
        assert out[0, 0] == pytest.approx(0.25 + 2 * 0.15 + 1 * 0.05)


@pytest.mark.parametrize("variant", ["def", "mv2nc"])
class TestDistributedCorrectness:
    @pytest.mark.parametrize("grid", [(1, 2), (2, 1), (2, 2), (2, 3)])
    def test_matches_reference(self, variant, grid):
        cfg = StencilConfig(grid[0], grid[1], 9, 11, iterations=3,
                            variant=variant)
        res = run_stencil(cfg)
        want = reference_stencil(_initial_global(cfg), cfg.iterations)
        assert np.allclose(assemble(cfg, res), want)

    def test_double_precision(self, variant):
        cfg = StencilConfig(2, 2, 8, 8, iterations=2, dtype="float64",
                            variant=variant)
        res = run_stencil(cfg)
        want = reference_stencil(_initial_global(cfg), 2)
        assert np.allclose(assemble(cfg, res), want)

    def test_single_rank(self, variant):
        cfg = StencilConfig(1, 1, 16, 16, iterations=2, variant=variant)
        res = run_stencil(cfg)
        want = reference_stencil(_initial_global(cfg), 2)
        assert np.allclose(assemble(cfg, res), want)


class TestMeasurements:
    def test_iteration_times_positive_and_counted(self):
        cfg = StencilConfig(1, 2, 16, 16, iterations=4)
        res = run_stencil(cfg)
        assert len(res.iteration_times) == 2
        for times in res.iteration_times:
            assert len(times) == 4
            assert all(t > 0 for t in times)
        assert res.median_iteration_time > 0

    def test_def_breakdown_attribution(self):
        """In a 1x2 grid the only neighbours are east/west, so only those
        directions may accumulate time, and cuda time must dominate
        (Figure 6's observation)."""
        cfg = StencilConfig(1, 2, 256, 256, iterations=2, variant="def",
                            functional=False)
        res = run_stencil(cfg)
        b = res.breakdown[0]
        assert b["north"]["cuda"] == 0 and b["south"]["mpi"] == 0
        assert b["east"]["cuda"] > 0 and b["east"]["mpi"] > 0
        assert b["east"]["cuda"] > b["east"]["mpi"]

    def test_mv2nc_faster_than_def_on_noncontiguous_grid(self):
        """The paper's headline application claim, at reduced scale."""
        times = {}
        for variant in ("def", "mv2nc"):
            cfg = StencilConfig(1, 2, 2048, 512, iterations=2,
                                variant=variant, functional=False)
            times[variant] = run_stencil(cfg).median_iteration_time
        assert times["mv2nc"] < times["def"]

    def test_nonfunctional_run_has_no_interiors(self):
        cfg = StencilConfig(1, 2, 32, 32, iterations=1, functional=False)
        res = run_stencil(cfg)
        assert res.interiors is None


class TestComplexityAnalysis:
    def test_loc_reduction(self):
        rep = analyze_complexity(dynamic=False)
        assert rep.loc["mv2nc"] < rep.loc["def"]
        assert 15 < rep.loc_reduction_percent < 75

    def test_static_counts_no_cuda_in_nc_variant(self):
        rep = analyze_complexity(dynamic=False)
        assert rep.static_calls["mv2nc"]["cudaMemcpy"] == 0
        assert rep.static_calls["mv2nc"]["cudaMemcpy2D"] == 0
        assert rep.static_calls["def"]["cudaMemcpy"] > 0
        assert rep.static_calls["def"]["cudaMemcpy2D"] > 0

    def test_dynamic_counts_interior_rank(self):
        rep = analyze_complexity(dynamic=True)
        dyn_def = rep.dynamic_calls["def"]
        dyn_nc = rep.dynamic_calls["mv2nc"]
        # Four neighbours: 4 receives, 4 sends, and for Def one D2H+H2D
        # per neighbour (2 contiguous pairs + 2 strided pairs).
        assert dyn_def["MPI_Irecv"] == 4
        assert dyn_def["MPI_Send"] == 4
        assert dyn_def["cudaMemcpy"] == 4
        assert dyn_def["cudaMemcpy2D"] == 4
        assert dyn_nc["MPI_Irecv"] == 4
        assert dyn_nc["MPI_Isend"] == 4
        assert dyn_nc["cudaMemcpy"] == 0
        assert dyn_nc["cudaMemcpy2D"] == 0
