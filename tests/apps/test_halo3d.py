"""Tests for the 3-D halo-exchange application."""

import numpy as np
import pytest

from repro.apps import Halo3DConfig, reference_diffusion3d, run_halo3d
from repro.apps.halo3d import _apply_diffusion, _face_types


def assemble(cfg, res):
    pz, py, px = cfg.proc_dims
    nz, ny, nx = cfg.local
    got = np.zeros((pz * nz, py * ny, px * nx), dtype=cfg.np_dtype)
    for r in range(cfg.nprocs):
        cz = r // (py * px)
        cy = (r // px) % py
        cx = r % px
        got[cz * nz:(cz + 1) * nz, cy * ny:(cy + 1) * ny,
            cx * nx:(cx + 1) * nx] = res.interiors[r]
    return got


def expected(cfg):
    rng = np.random.default_rng(cfg.seed)
    shape = tuple(p * n for p, n in zip(cfg.proc_dims, cfg.local))
    init = rng.random(shape, dtype=np.float32).astype(cfg.np_dtype)
    return reference_diffusion3d(init, cfg.iterations)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            Halo3DConfig(proc_dims=(0, 1, 1), local=(4, 4, 4))
        with pytest.raises(ValueError):
            Halo3DConfig(proc_dims=(1, 1, 1), local=(4, 4, 4), variant="x")
        with pytest.raises(ValueError):
            Halo3DConfig(proc_dims=(1, 2), local=(4, 4, 4))

    def test_face_type_sizes(self):
        cfg = Halo3DConfig(proc_dims=(1, 1, 2), local=(6, 5, 4))
        faces = _face_types(cfg)
        esz = 4
        assert faces["z-"]["send"].size == 5 * 4 * esz
        assert faces["y+"]["send"].size == 6 * 4 * esz
        assert faces["x-"]["send"].size == 6 * 5 * esz

    def test_x_face_is_nonuniform(self):
        """The x face must exercise the gather-kernel path."""
        cfg = Halo3DConfig(proc_dims=(1, 1, 2), local=(4, 3, 5))
        t = _face_types(cfg)["x-"]["send"]
        assert t.segments.uniform() is None
        assert t.segments.count == 4 * 3


class TestKernel:
    def test_uniform_field(self):
        a = np.ones((5, 5, 5))
        _apply_diffusion(a)
        assert a[2, 2, 2] == pytest.approx(0.4 + 6 * 0.1)

    def test_reference_shape_dtype(self):
        init = np.random.default_rng(0).random((4, 5, 6)).astype(np.float32)
        out = reference_diffusion3d(init, 2)
        assert out.shape == init.shape and out.dtype == init.dtype


@pytest.mark.parametrize("variant", ["mv2nc", "pack"])
class TestDistributedCorrectness:
    @pytest.mark.parametrize("dims", [(1, 1, 2), (2, 1, 1), (2, 2, 2), (1, 3, 2)])
    def test_matches_reference(self, variant, dims):
        cfg = Halo3DConfig(proc_dims=dims, local=(5, 4, 6), iterations=3,
                           variant=variant)
        res = run_halo3d(cfg)
        assert np.allclose(assemble(cfg, res), expected(cfg))

    def test_double_precision(self, variant):
        cfg = Halo3DConfig(proc_dims=(2, 1, 2), local=(4, 4, 4),
                           iterations=2, dtype="float64", variant=variant)
        res = run_halo3d(cfg)
        assert np.allclose(assemble(cfg, res), expected(cfg))

    def test_single_rank(self, variant):
        cfg = Halo3DConfig(proc_dims=(1, 1, 1), local=(6, 6, 6),
                           iterations=2, variant=variant)
        res = run_halo3d(cfg)
        assert np.allclose(assemble(cfg, res), expected(cfg))


class TestVariantComparison:
    def test_datatype_path_beats_explicit_pack(self):
        """The library's pipelined datatype path should outperform
        user-level pack/send/unpack staging (extra device traffic and no
        overlap between faces' pack and send)."""
        from repro.hw import HardwareConfig

        # Make the kernel negligible so the comparison isolates the
        # communication structure: the datatype path posts all six faces
        # concurrently, while user-level Pack+Send serializes face by face.
        hw = HardwareConfig.fermi_qdr().with_overrides(device_compute_rate=1e15)
        times = {}
        for variant in ("mv2nc", "pack"):
            cfg = Halo3DConfig(proc_dims=(2, 2, 2), local=(64, 64, 64),
                               iterations=3, variant=variant,
                               functional=False)
            times[variant] = run_halo3d(cfg, hw=hw).median_iteration_time
        assert times["mv2nc"] < 0.9 * times["pack"]

    def test_nonfunctional_run(self):
        cfg = Halo3DConfig(proc_dims=(1, 1, 2), local=(8, 8, 8),
                           iterations=1, functional=False)
        res = run_halo3d(cfg)
        assert res.interiors is None
        assert res.median_iteration_time > 0
