"""Tests for the distributed GPU matrix transpose."""

import numpy as np
import pytest

from repro.apps import TransposeConfig, run_transpose


def global_matrix(cfg):
    rng = np.random.default_rng(cfg.seed)
    return rng.random((cfg.n, cfg.n), dtype=np.float32).astype(cfg.np_dtype)


class TestConfig:
    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            TransposeConfig(nprocs=3, n=64)

    def test_bad_variant(self):
        with pytest.raises(ValueError):
            TransposeConfig(nprocs=2, n=64, variant="quantum")


@pytest.mark.parametrize("variant", ["mv2nc", "staged"])
class TestCorrectness:
    @pytest.mark.parametrize("nprocs,n", [(1, 16), (2, 32), (4, 64), (8, 64)])
    def test_transpose_matches_numpy(self, variant, nprocs, n):
        cfg = TransposeConfig(nprocs=nprocs, n=n, variant=variant)
        res = run_transpose(cfg)
        assert np.allclose(np.vstack(res.outputs), global_matrix(cfg).T)

    def test_double_precision(self, variant):
        cfg = TransposeConfig(nprocs=2, n=32, dtype="float64", variant=variant)
        res = run_transpose(cfg)
        got = np.vstack(res.outputs)
        assert got.dtype == np.float64
        assert np.allclose(got, global_matrix(cfg).T)

    def test_involution(self, variant):
        """Transposing the transpose restores the matrix (run twice)."""
        cfg = TransposeConfig(nprocs=2, n=32, variant=variant)
        once = np.vstack(run_transpose(cfg).outputs)
        assert np.allclose(once.T, global_matrix(cfg))


class TestPerformance:
    def test_datatype_path_beats_staged_at_scale(self):
        times = {}
        for variant in ("mv2nc", "staged"):
            cfg = TransposeConfig(nprocs=4, n=1024, variant=variant,
                                  functional=False)
            times[variant] = run_transpose(cfg).time
        assert times["mv2nc"] < times["staged"] / 1.5

    def test_nonfunctional_returns_no_outputs(self):
        cfg = TransposeConfig(nprocs=2, n=64, functional=False)
        res = run_transpose(cfg)
        assert res.outputs is None and res.time > 0
