"""Shard-engine equality: any node partition reproduces the sequential run.

The conservative sharded engine (:mod:`repro.sim.shard`) promises results,
merged traces and the final clock *bit-identical* to sequential execution.
These tests pin that promise on the paper's own workloads (the fig3
pipeline gantt, stencil halo exchange, the fault-recovery matrix) and on
randomized partitions via hypothesis, plus unit coverage for the two core
primitives the engine rests on: bounded windows and canonical wire keys.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import StencilConfig, run_stencil
from repro.hw import Cluster
from repro.ib.faults import FaultPlan, FaultSpec
from repro.mpi import BYTE, Datatype, MpiWorld
from repro.sim import Environment, Tracer, WIRE_KEY_BASE, wire_key


# -- core primitives ------------------------------------------------------------

def _schedule(env, when, cb=None, label="t"):
    """Schedule a bare succeeded event at an absolute time."""
    ev = env.event(label=label)
    ev._ok = True
    ev._value = None
    if cb is not None:
        ev.callbacks.append(cb)
    env.schedule_at(ev, when)
    return ev


class TestRunWindow:
    def test_bound_is_exclusive(self):
        env = Environment()
        seen = []
        for t in (1.0, 2.0, 3.0):
            _schedule(env, t, lambda _ev, t=t: seen.append(t))
        count = env.run_window(2.0)
        assert count == 1
        assert seen == [1.0]
        assert env.now == 2.0  # clock advances to the bound...
        assert env.last_event_time == 1.0  # ...but the last event stays real
        env.run_window(3.5)
        assert seen == [1.0, 2.0, 3.0]

    def test_back_to_back_windows_partition_the_timeline(self):
        env = Environment()
        seen = []
        for t in (0.5, 1.0, 1.5, 2.0):
            _schedule(env, t, lambda _ev, t=t: seen.append(t))
        total = env.run_window(1.0) + env.run_window(2.0) + env.run_window(9.9)
        assert total == 4
        assert seen == [0.5, 1.0, 1.5, 2.0]

    def test_run_until_tracks_last_event_time(self):
        env = Environment()
        _schedule(env, 1.0)
        _schedule(env, 7.0)
        env.run(until=5.0)  # stops between events: clock pins to the horizon
        assert env.now == 5.0
        assert env.last_event_time == 1.0
        env.run(until=8.0)  # queue drains: clock stays at the last event
        assert env.now == 7.0
        assert env.last_event_time == 7.0


class TestWireKeys:
    def test_wire_events_follow_local_events_at_same_instant(self):
        env = Environment()
        order = []
        env.schedule_wire(1.0, wire_key(0, 1),
                          lambda _ev: order.append("wire"))
        _schedule(env, 1.0, lambda _ev: order.append("local"))
        env.run()
        assert order == ["local", "wire"]

    def test_wire_events_order_by_source_then_seq(self):
        env = Environment()
        order = []
        for src, seq in [(2, 1), (0, 2), (1, 1), (0, 1)]:
            env.schedule_wire(
                1.0, wire_key(src, seq),
                lambda _ev, s=(src, seq): order.append(s),
            )
        env.run()
        assert order == [(0, 1), (0, 2), (1, 1), (2, 1)]

    def test_wire_key_layout(self):
        assert wire_key(0, 1) > WIRE_KEY_BASE
        assert wire_key(0, 2) < wire_key(1, 1)


class TestScheduleMany:
    def test_bulk_matches_incremental(self):
        def build(bulk):
            env = Environment()
            seen = []
            entries = []
            times = [3.0, 1.0, 2.0, 1.0, 0.0, 2.0, 0.0]
            for i, t in enumerate(times):
                ev = env.event(label=f"e{i}")
                ev._ok = True
                ev._value = None
                ev.callbacks.append(lambda _ev, i=i, t=t: seen.append((t, i)))
                entries.append((ev, t))
            if bulk:
                env.schedule_many(entries)
            else:
                for ev, t in entries:
                    env.schedule_at(ev, t)
            env.run()
            return seen

        assert build(bulk=True) == build(bulk=False)


# -- workload equality ----------------------------------------------------------

def _ring_program(ctx, vec, payload):
    """Every rank sends a strided vector to its right neighbor."""
    nxt = (ctx.rank + 1) % ctx.size
    prv = (ctx.rank - 1) % ctx.size
    sbuf = ctx.cuda.malloc(payload)
    rbuf = ctx.cuda.malloc(payload)
    sbuf.view()[:] = (np.arange(payload, dtype=np.uint64) * (ctx.rank + 1)) % 251
    rreq = ctx.comm.Irecv(rbuf, 1, vec, source=prv)
    yield from ctx.comm.Send(sbuf, 1, vec, dest=nxt)
    yield from rreq.wait()
    return rbuf.view().copy(), ctx.now


def _run_ring(nodes, shards=1, shard_map=None, rows=64):
    vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
    cluster = Cluster(nodes, shards=shards, shard_map=shard_map)
    outs = MpiWorld(cluster).run(_ring_program, vec, rows * 8)
    return outs, cluster.env.now, cluster.tracer.canonical()


def _assert_runs_equal(a, b):
    outs_a, now_a, tr_a = a
    outs_b, now_b, tr_b = b
    assert now_a == now_b
    assert tr_a == tr_b
    for (buf_a, t_a), (buf_b, t_b) in zip(outs_a, outs_b):
        assert t_a == t_b
        np.testing.assert_array_equal(buf_a, buf_b)


class TestRingEquality:
    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_ring_matches_sequential(self, shards):
        _assert_runs_equal(_run_ring(4), _run_ring(4, shards=shards))

    def test_rendezvous_sized_ring(self):
        # 64KiB messages cross the eager threshold: the full RTS/CTS/FIN
        # rendezvous plus RDMA payload traffic crosses the shard bridge.
        _assert_runs_equal(
            _run_ring(2, rows=1 << 13), _run_ring(2, shards=2, rows=1 << 13)
        )


class TestFig3Equality:
    def test_gantt_identical_under_sharding(self):
        from repro.bench.experiments import fig3_pipeline_gantt

        seq = fig3_pipeline_gantt(scale="quick")
        shd = fig3_pipeline_gantt(scale="quick", shards=2)
        assert seq["text"] == shd["text"]
        assert seq["overlap_factor"] == shd["overlap_factor"]
        assert seq["wall_seconds"] == shd["wall_seconds"]


class TestStencilEquality:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_16_rank_stencil_matches_sequential(self, shards):
        def run(shards):
            cfg = StencilConfig(4, 4, 12, 12, iterations=2)
            tracer = Tracer()
            res = run_stencil(cfg, shards=shards, tracer=tracer)
            return res, tracer.canonical()

        seq, tr_seq = run(1)
        shd, tr_shd = run(shards)
        assert seq.iteration_times == shd.iteration_times
        assert tr_seq == tr_shd
        for a, b in zip(seq.interiors, shd.interiors):
            np.testing.assert_array_equal(a, b)


class TestFaultMatrixEquality:
    CASES = {
        "none": [],
        "drop-rts": [FaultSpec("ctl", "drop", ctl_type="rts")],
        "dup-all": [
            FaultSpec("ctl", "duplicate", ctl_type="rts"),
            FaultSpec("ctl", "duplicate", ctl_type="cts"),
            FaultSpec("ctl", "duplicate", ctl_type="fin"),
        ],
        "rdma-fail-x2": [FaultSpec("rdma_write", "fail", count=2)],
    }

    @staticmethod
    def _program(ctx, vec, payload):
        buf = ctx.cuda.malloc(payload)
        if ctx.rank == 0:
            buf.view()[:] = np.arange(payload, dtype=np.uint64) % 251
            yield from ctx.comm.Send(buf, 1, vec, dest=1)
        else:
            buf.view()[:] = 0
            yield from ctx.comm.Recv(buf, 1, vec, source=0)
        return buf.view().copy(), ctx.now

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_recovery_converges_identically(self, case):
        rows = 1 << 12
        specs = self.CASES[case]

        def run(shards):
            plan = FaultPlan(specs=tuple(specs)) if specs else None
            cluster = Cluster(2, faults=plan, shards=shards)
            vec = Datatype.hvector(rows, 4, 8, BYTE).commit()
            outs = MpiWorld(cluster).run(
                self._program, vec, rows * 8, until=1.0
            )
            return outs, cluster.env.now, cluster.tracer.canonical()

        _assert_runs_equal(run(1), run(2))


# -- randomized partitions ------------------------------------------------------

def _normalize_map(raw):
    """Remap arbitrary shard labels to contiguous ids 0..k by first use."""
    ids = {}
    return tuple(ids.setdefault(s, len(ids)) for s in raw)


class TestPartitionInvariance:
    @settings(max_examples=6, deadline=None)
    @given(st.data())
    def test_any_partition_preserves_merged_order(self, data):
        nodes = data.draw(st.integers(2, 4), label="nodes")
        raw = data.draw(
            st.lists(st.integers(0, nodes - 1),
                     min_size=nodes, max_size=nodes),
            label="shard_map",
        )
        shard_map = _normalize_map(raw)
        shards = max(shard_map) + 1
        seq = _run_ring(nodes, rows=32)
        if shards == 1:
            shd = _run_ring(nodes, shards=1, rows=32)
        else:
            shd = _run_ring(nodes, shards=shards, shard_map=shard_map,
                            rows=32)
        _assert_runs_equal(seq, shd)
