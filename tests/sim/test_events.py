"""Unit tests for the event primitives."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, SimulationError, Timeout


@pytest.fixture
def env():
    return Environment()


class TestEventLifecycle:
    def test_fresh_event_is_pending(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.value

    def test_ok_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(SimulationError):
            _ = ev.ok

    def test_succeed_sets_value(self, env):
        ev = env.event()
        ev.succeed(42)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 42

    def test_succeed_twice_raises(self, env):
        ev = env.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_then_succeed_raises(self, env):
        ev = env.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        assert seen == []  # not yet processed
        env.run()
        assert seen == ["hello"]

    def test_unhandled_failure_aborts_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_does_not_abort(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        ev.defuse()
        env.run()  # no raise
        assert not ev.ok

    def test_trigger_copies_state(self, env):
        a, b = env.event(), env.event()
        a.succeed(7)
        env.run()
        b.trigger(a)
        assert b.ok and b.value == 7


class TestTimeout:
    def test_timeout_fires_at_delay(self, env):
        t = env.timeout(5.0, value="done")
        env.run()
        assert env.now == 5.0
        assert t.value == "done"

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_zero_delay_ok(self, env):
        env.timeout(0.0)
        env.run()
        assert env.now == 0.0

    def test_timeouts_process_in_time_order(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            ev = env.timeout(delay, value=delay)
            ev.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self, env):
        order = []
        for i in range(10):
            ev = env.timeout(1.0, value=i)
            ev.callbacks.append(lambda e: order.append(e.value))
        env.run()
        assert order == list(range(10))


class TestConditions:
    def test_all_of_waits_for_everything(self, env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(2.0, value="b")
        done = AllOf(env, [a, b])
        env.run(done)
        assert env.now == 2.0
        assert done.value == {a: "a", b: "b"}

    def test_any_of_fires_on_first(self, env):
        a = env.timeout(1.0, value="a")
        b = env.timeout(2.0, value="b")
        done = AnyOf(env, [a, b])
        env.run(done)
        assert env.now == 1.0
        assert done.value == {a: "a"}

    def test_empty_all_of_fires_immediately(self, env):
        done = AllOf(env, [])
        env.run()
        assert done.processed and done.value == {}

    def test_operator_and(self, env):
        a = env.timeout(1.0)
        b = env.timeout(2.0)
        env.run(a & b)
        assert env.now == 2.0

    def test_operator_or(self, env):
        a = env.timeout(1.0)
        b = env.timeout(2.0)
        env.run(a | b)
        assert env.now == 1.0

    def test_all_of_with_already_processed_event(self, env):
        a = env.timeout(1.0, value="a")
        env.run()
        b = env.timeout(1.0, value="b")
        done = AllOf(env, [a, b])
        env.run(done)
        assert done.value == {a: "a", b: "b"}

    def test_all_of_propagates_failure(self, env):
        a = env.timeout(1.0)
        b = env.event()
        b.fail(RuntimeError("inner"))
        done = AllOf(env, [a, b])
        done.defuse()
        env.run()
        assert done.triggered and not done.ok
        assert isinstance(done.value, RuntimeError)

    def test_condition_rejects_foreign_events(self, env):
        other = Environment()
        with pytest.raises(SimulationError):
            AllOf(env, [env.event(), other.event()])

    def test_late_sibling_failure_after_anyof_fired_is_defused(self, env):
        a = env.timeout(1.0, value="fast")
        b = env.event()
        done = AnyOf(env, [a, b])
        env.run(done)
        b.fail(RuntimeError("late"))
        env.run()  # must not raise: the condition defuses it
        assert done.value == {a: "fast"}
