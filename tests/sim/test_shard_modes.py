"""Transport-mode invariance of the sharded engine (hypothesis).

The ladder protocol has three independently-switchable mechanisms that
must never affect simulated results: batched window grants (ladder depth
``REPRO_SHARD_LADDER_MAX``), direct worker-to-worker message shipping
(``REPRO_SHARD_DIRECT``) and the adaptive widening of the conservative
lookahead under a fat-tree topology. This module drives randomized
workloads -- random node partitions, every fault class of the ``faultmx``
experiment -- through the default engine and through the degenerate
*per-event shipping* reference mode (depth 1, direct off: every message
rides a coordinator round, the pre-ladder protocol), and requires traces,
results and clocks bit-identical between the two transports.

Sequential equality is asserted where it is defined. Unfiltered fault
specs ("drop the first RTS *anywhere*") tally matches with one global
per-spec counter, and each shard runs its own injector -- so which
operation is "first" legitimately depends on the partition. Specs with a
``src`` filter confine matching to one node's deterministic TX order,
which no partition can reorder, so for those (and for fault-free runs)
all three modes must agree with the sequential run exactly.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Cluster
from repro.ib.fabric import FatTreeTopology
from repro.ib.faults import FaultPlan, FaultSpec
from repro.mpi import BYTE, Datatype, MpiWorld

#: The eight fault classes of ``repro.bench.experiments.fault_matrix``.
FAULT_CLASSES = [
    ("none", []),
    ("drop-rts", [FaultSpec("ctl", "drop", ctl_type="rts")]),
    ("drop-cts", [FaultSpec("ctl", "drop", ctl_type="cts")]),
    ("drop-fin", [FaultSpec("ctl", "drop", ctl_type="fin")]),
    ("dup-all", [
        FaultSpec("ctl", "duplicate", ctl_type="rts"),
        FaultSpec("ctl", "duplicate", ctl_type="cts"),
        FaultSpec("ctl", "duplicate", ctl_type="fin"),
    ]),
    ("ctl-delay", [FaultSpec("ctl", "delay", ctl_type="cts", delay=400e-6)]),
    ("rdma-stall", [FaultSpec("rdma_write", "stall", delay=500e-6)]),
    ("rdma-fail-x2", [FaultSpec("rdma_write", "fail", count=2)]),
]

_NODES = 8
_ROWS = 1 << 11  # past the eager threshold: the rendezvous path crosses shards


def _ring_program(ctx, vec, payload):
    nxt = (ctx.rank + 1) % ctx.size
    prv = (ctx.rank - 1) % ctx.size
    sbuf = ctx.cuda.malloc(payload)
    rbuf = ctx.cuda.malloc(payload)
    sbuf.view()[:] = (
        np.arange(payload, dtype=np.uint64) * (ctx.rank + 1)
    ) % 251
    rreq = ctx.comm.Irecv(rbuf, 1, vec, source=prv)
    yield from ctx.comm.Send(sbuf, 1, vec, dest=nxt)
    yield from rreq.wait()
    return rbuf.view().copy(), ctx.now


def _run(shard_map, specs, topology=None):
    vec = Datatype.hvector(_ROWS, 4, 8, BYTE).commit()
    plan = FaultPlan(specs=tuple(specs)) if specs else None
    cluster = Cluster(_NODES, shard_map=shard_map, faults=plan,
                      topology=topology)
    outs = MpiWorld(cluster).run(_ring_program, vec, _ROWS * 8, until=1.0)
    return outs, cluster.env.now, cluster.tracer.canonical()


def _fingerprint(run):
    """Reduce a run to primitives so ``==`` means bit-identical.

    Raw ``pickle.dumps`` bytes are NOT a valid fingerprint here: pickle
    memoizes shared sub-objects, so two structurally identical traces
    serialize differently depending on whether equal tuples are one
    shared object (sequential run) or were reconstructed per-object by
    the worker pipe round-trip (sharded run).
    """
    outs, now, trace = run
    return (
        [(buf.tobytes(), float(t)) for buf, t in outs],
        float(now),
        trace,
    )


def _in_mode(env_vars, fn):
    saved = {k: os.environ.get(k) for k in env_vars}
    os.environ.update(env_vars)
    try:
        return fn()
    finally:
        for k, v in saved.items():
            if v is None:
                os.environ.pop(k, None)
            else:
                os.environ[k] = v


def _normalized_map(raw):
    """Remap to contiguous shard ids 0..k in order of first appearance."""
    order = {}
    for s in raw:
        order.setdefault(s, len(order))
    return tuple(order[s] for s in raw)


_PER_EVENT = {"REPRO_SHARD_LADDER_MAX": "1", "REPRO_SHARD_DIRECT": "0"}


class TestTransportModeInvariance:
    @settings(max_examples=5, deadline=None)
    @given(
        raw_map=st.lists(
            st.sampled_from(range(8)), min_size=_NODES, max_size=_NODES
        ).filter(lambda m: 2 <= len(set(m)) <= 8),
        fault_idx=st.integers(0, len(FAULT_CLASSES) - 1),
    )
    def test_ladders_and_direct_match_per_event(self, raw_map, fault_idx):
        shard_map = _normalized_map(raw_map)
        _, specs = FAULT_CLASSES[fault_idx]
        ladders = _fingerprint(_run(shard_map, specs))
        per_event = _in_mode(
            _PER_EVENT, lambda: _fingerprint(_run(shard_map, specs))
        )
        assert ladders == per_event
        if not specs:
            assert ladders == _fingerprint(_run(None, specs))

    @settings(max_examples=4, deadline=None)
    @given(
        raw_map=st.lists(
            st.sampled_from(range(8)), min_size=_NODES, max_size=_NODES
        ).filter(lambda m: 2 <= len(set(m)) <= 8),
        fault_idx=st.integers(1, len(FAULT_CLASSES) - 1),
        src=st.integers(0, _NODES - 1),
    )
    def test_link_filtered_faults_match_sequential(
        self, raw_map, fault_idx, src
    ):
        from dataclasses import replace

        shard_map = _normalized_map(raw_map)
        _, specs = FAULT_CLASSES[fault_idx]
        pinned = [replace(s, src=src) for s in specs]
        sequential = _fingerprint(_run(None, pinned))
        ladders = _fingerprint(_run(shard_map, pinned))
        per_event = _in_mode(
            _PER_EVENT, lambda: _fingerprint(_run(shard_map, pinned))
        )
        assert ladders == sequential
        assert per_event == sequential


class TestFatTreeLookahead:
    def test_aligned_partition_widens_lookahead(self):
        topo = FatTreeTopology(leaf_size=4, inter_latency=3e-6)
        cluster = Cluster(_NODES, shard_map=(0,) * 4 + (1,) * 4,
                          topology=topo)
        assert cluster.fabric.shard_lookahead(cluster.shard_map) == 3e-6

    def test_split_leaf_keeps_base_lookahead(self):
        topo = FatTreeTopology(leaf_size=4, inter_latency=3e-6)
        cluster = Cluster(_NODES, shard_map=(0, 1) * 4, topology=topo)
        assert (
            cluster.fabric.shard_lookahead(cluster.shard_map)
            == cluster.cfg.net_latency
        )

    @pytest.mark.parametrize("shard_map", [
        (0,) * 4 + (1,) * 4,   # aligned: wide (inter-leaf) lookahead
        (0, 0, 1, 1, 2, 2, 3, 3),  # split leaves: base lookahead
    ])
    def test_fat_tree_trace_equality(self, shard_map):
        topo = FatTreeTopology(leaf_size=4, inter_latency=3e-6)
        sequential = _fingerprint(_run(None, [], topology=topo))
        sharded = _fingerprint(_run(shard_map, [], topology=topo))
        assert sharded == sequential

    def test_fat_tree_changes_the_simulation(self):
        # Sanity that the topology is actually live: inter-leaf latency
        # must slow the ring down versus the flat fabric.
        flat_now = _run(None, [])[1]
        tree_now = _run(None, [], FatTreeTopology(4, 3e-6))[1]
        assert tree_now > flat_now
