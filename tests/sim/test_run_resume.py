"""Regression tests: ``run(until=time)`` stopping *between* events.

The leftover queue entries must survive -- ``peek()``/``step()`` stay
consistent with the stopped clock and a subsequent ``run()`` resumes
exactly where the previous call left off.
"""

import pytest

from repro.sim import Environment
from repro.sim.core import EmptySchedule


def _two_step_process(env, fired):
    def proc():
        yield env.timeout(1.0)
        fired.append(env.now)
        yield env.timeout(1.0)
        fired.append(env.now)

    return env.process(proc())


def test_leftover_queue_survives_resumed_run():
    env = Environment()
    fired = []
    _two_step_process(env, fired)
    env.run(until=1.5)
    assert env.now == 1.5
    assert fired == [1.0]
    # The event at t=2.0 is still queued, visible, and in the future.
    assert env.peek() == 2.0
    env.run()
    assert fired == [1.0, 2.0]
    assert env.now == 2.0
    assert env.peek() == float("inf")


def test_stop_exactly_at_event_time_processes_it():
    env = Environment()
    fired = []
    _two_step_process(env, fired)
    env.run(until=1.0)
    assert env.now == 1.0
    assert fired == [1.0]
    assert env.peek() == 2.0


def test_step_resumes_after_timed_stop():
    env = Environment()
    fired = []
    _two_step_process(env, fired)
    env.run(until=1.5)
    # step() jumps the clock to the leftover entry and processes it.
    env.step()
    assert env.now == 2.0
    assert fired == [1.0, 2.0]


def test_repeated_timed_runs_chain():
    env = Environment()
    fired = []
    _two_step_process(env, fired)
    for stop in (0.25, 0.5, 1.25, 1.75):
        env.run(until=stop)
        assert env.now == stop
    # Queue drains before the stop time: the clock rests at the last event.
    env.run(until=3.0)
    assert env.now == 2.0
    assert fired == [1.0, 2.0]


def test_step_on_empty_queue_raises():
    env = Environment()
    env.run()
    with pytest.raises(EmptySchedule):
        env.step()


def test_run_until_past_raises():
    env = Environment()
    _two_step_process(env, [])
    env.run(until=1.5)
    with pytest.raises(ValueError):
        env.run(until=1.0)
