"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Environment, Resource, SimulationError, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_grant_within_capacity_is_immediate(self, env):
        res = Resource(env, capacity=2)
        r1, r2 = res.request(), res.request()
        assert r1.triggered and r2.triggered
        assert res.count == 2

    def test_over_capacity_waits(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        assert r1.triggered and not r2.triggered
        assert res.queue_len == 1
        res.release(r1)
        assert r2.triggered
        assert res.count == 1

    def test_fifo_grant_order(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(name, hold):
            with res.request() as req:
                yield req
                order.append((name, env.now))
                yield env.timeout(hold)

        for i in range(4):
            env.process(user(i, 1.0))
        env.run()
        assert order == [(0, 0.0), (1, 1.0), (2, 2.0), (3, 3.0)]

    def test_context_manager_releases(self, env):
        res = Resource(env, capacity=1)

        def user():
            with res.request() as req:
                yield req
                yield env.timeout(1.0)

        env.process(user())
        env.run()
        assert res.count == 0

    def test_release_unknown_request_raises(self, env):
        res_a = Resource(env, capacity=1)
        res_b = Resource(env, capacity=1)
        req = res_a.request()
        with pytest.raises(SimulationError):
            res_b.release(req)

    def test_release_queued_request_cancels_it(self, env):
        res = Resource(env, capacity=1)
        r1 = res.request()
        r2 = res.request()
        res.release(r2)  # cancel the queued one
        assert res.queue_len == 0
        res.release(r1)
        assert res.count == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)
        res.request()
        r2 = res.request()
        r2.cancel()
        assert res.queue_len == 0

    def test_parallel_capacity_two(self, env):
        res = Resource(env, capacity=2)
        finish = []

        def user(name):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
                finish.append((name, env.now))

        for i in range(4):
            env.process(user(i))
        env.run()
        assert finish == [(0, 1.0), (1, 1.0), (2, 2.0), (3, 2.0)]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return item

        store.put("x")
        p = env.process(consumer())
        assert env.run(p) == "x"

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        got = []

        def consumer():
            got.append((yield store.get()))

        def producer():
            yield env.timeout(3.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert got == ["late"]
        assert env.now == 3.0

    def test_fifo_item_order(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)
        got = []

        def consumer():
            for _ in range(5):
                got.append((yield store.get()))

        env.run(env.process(consumer()))
        assert got == [0, 1, 2, 3, 4]

    def test_filtered_get(self, env):
        store = Store(env)
        for i in range(5):
            store.put(i)

        def consumer():
            item = yield store.get(lambda x: x % 2 == 1)
            return item

        assert env.run(env.process(consumer())) == 1
        assert store.peek_items() == (0, 2, 3, 4)

    def test_filtered_get_waits_for_matching_item(self, env):
        store = Store(env)
        store.put("nope")

        def consumer():
            item = yield store.get(lambda x: x == "yes")
            return (item, env.now)

        def producer():
            yield env.timeout(2.0)
            yield store.put("yes")

        p = env.process(consumer())
        env.process(producer())
        assert env.run(p) == ("yes", 2.0)
        assert store.peek_items() == ("nope",)

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        done = []

        def producer():
            yield store.put("a")
            done.append(("a", env.now))
            yield store.put("b")
            done.append(("b", env.now))

        def consumer():
            yield env.timeout(5.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert done == [("a", 0.0), ("b", 5.0)]

    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_len(self, env):
        store = Store(env)
        assert len(store) == 0
        store.put(1)
        assert len(store) == 1

    def test_multiple_getters_fifo(self, env):
        store = Store(env)
        got = []

        def consumer(name):
            item = yield store.get()
            got.append((name, item))

        env.process(consumer("first"))
        env.process(consumer("second"))

        def producer():
            yield env.timeout(1.0)
            yield store.put("x")
            yield store.put("y")

        env.process(producer())
        env.run()
        assert got == [("first", "x"), ("second", "y")]
