"""Unit tests for process coroutines."""

import pytest

from repro.sim import Environment, Interrupt, SimulationError


@pytest.fixture
def env():
    return Environment()


class TestBasicProcesses:
    def test_process_advances_clock(self, env):
        def proc():
            yield env.timeout(3.0)
            yield env.timeout(4.0)
            return "done"

        p = env.process(proc())
        result = env.run(p)
        assert result == "done"
        assert env.now == 7.0

    def test_process_return_value(self, env):
        def proc():
            yield env.timeout(1.0)
            return 123

        assert env.run(env.process(proc())) == 123

    def test_process_receives_event_value(self, env):
        def proc():
            got = yield env.timeout(1.0, value="payload")
            return got

        assert env.run(env.process(proc())) == "payload"

    def test_processes_interleave(self, env):
        log = []

        def worker(name, delay):
            for i in range(3):
                yield env.timeout(delay)
                log.append((name, env.now))

        env.process(worker("a", 1.0))
        env.process(worker("b", 1.5))
        env.run()
        # At t=3.0 both fire; "b" scheduled its timeout earlier (t=1.5 vs
        # t=2.0) so FIFO tie-breaking resumes it first.
        assert log == [
            ("a", 1.0),
            ("b", 1.5),
            ("a", 2.0),
            ("b", 3.0),
            ("a", 3.0),
            ("b", 4.5),
        ]

    def test_process_waits_on_another_process(self, env):
        def child():
            yield env.timeout(2.0)
            return "child-result"

        def parent():
            result = yield env.process(child())
            return result

        assert env.run(env.process(parent())) == "child-result"
        assert env.now == 2.0

    def test_yield_from_composition(self, env):
        def inner():
            yield env.timeout(1.0)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b

        assert env.run(env.process(outer())) == 20
        assert env.now == 2.0

    def test_process_waiting_on_already_processed_event(self, env):
        ev = env.timeout(0.0, value="early")
        env.run()
        assert ev.processed

        def proc():
            got = yield ev
            return got

        assert env.run(env.process(proc())) == "early"

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_non_event_fails_process(self, env):
        def proc():
            yield 42

        p = env.process(proc())
        with pytest.raises(SimulationError, match="non-event"):
            env.run(p)

    def test_exception_in_process_propagates(self, env):
        def proc():
            yield env.timeout(1.0)
            raise KeyError("inner")

        p = env.process(proc())
        with pytest.raises(KeyError):
            env.run(p)

    def test_failed_event_thrown_into_waiter(self, env):
        failing = env.event()

        def failer():
            yield env.timeout(1.0)
            failing.fail(RuntimeError("expected"))

        def waiter():
            try:
                yield failing
            except RuntimeError as exc:
                return f"caught:{exc}"

        env.process(failer())
        p = env.process(waiter())
        assert env.run(p) == "caught:expected"

    def test_active_process_tracking(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1.0)
            seen.append(env.active_process)

        p = env.process(proc())
        env.run()
        assert seen == [p, p]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_wakes_waiting_process(self, env):
        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(2.0)
            p.interrupt("wake up")

        env.process(interrupter())
        assert env.run(p) == ("interrupted", "wake up", 2.0)

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_survives_interrupt_and_continues(self, env):
        def sleeper():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(1.0)
            return env.now

        p = env.process(sleeper())

        def interrupter():
            yield env.timeout(5.0)
            p.interrupt()

        env.process(interrupter())
        assert env.run(p) == 6.0


class TestRunControl:
    def test_run_until_time(self, env):
        ticks = []

        def clock():
            while True:
                yield env.timeout(1.0)
                ticks.append(env.now)

        env.process(clock())
        env.run(until=3.5)
        assert ticks == [1.0, 2.0, 3.0]
        assert env.now == 3.5

    def test_run_until_past_time_rejected(self, env):
        env.timeout(10.0)
        env.run()
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_until_event_deadlock_detected(self, env):
        never = env.event()
        with pytest.raises(SimulationError, match="deadlock"):
            env.run(never)

    def test_run_empty_schedule_returns_none(self, env):
        assert env.run() is None

    def test_peek_empty(self, env):
        assert env.peek() == float("inf")
