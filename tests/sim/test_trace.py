"""Unit and property tests for interval tracing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Tracer, union_duration


class TestTracer:
    def test_record_and_breakdown(self):
        tr = Tracer()
        tr.record(0.0, 1.0, "d2h", "copy")
        tr.record(1.0, 3.0, "d2h", "copy")
        tr.record(0.0, 5.0, "net", "rdma")
        assert tr.breakdown() == {"d2h": 3.0, "net": 5.0}

    def test_breakdown_by_label(self):
        tr = Tracer()
        tr.record(0.0, 1.0, "d2h", "east")
        tr.record(0.0, 2.0, "h2d", "east")
        tr.record(0.0, 4.0, "d2h", "west")
        assert tr.breakdown(key="label") == {"east": 3.0, "west": 4.0}

    def test_busy_time_merges_overlaps(self):
        tr = Tracer()
        tr.record(0.0, 2.0, "eng", "a")
        tr.record(1.0, 3.0, "eng", "b")
        assert tr.busy_time("eng") == 3.0
        assert tr.total_time("eng") == 4.0

    def test_invalid_interval_rejected(self):
        tr = Tracer()
        with pytest.raises(ValueError):
            tr.record(2.0, 1.0, "eng", "x")

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record(0.0, 1.0, "eng", "x")
        assert tr.intervals == []

    def test_meta_lookup(self):
        tr = Tracer()
        tr.record(0.0, 1.0, "eng", "x", direction="east", bytes=1024)
        iv = tr.intervals[0]
        assert iv.get("direction") == "east"
        assert iv.get("bytes") == 1024
        assert iv.get("missing", "dflt") == "dflt"

    def test_by_engine_and_label(self):
        tr = Tracer()
        tr.record(0.0, 1.0, "a", "x:1")
        tr.record(0.0, 1.0, "b", "x:2")
        tr.record(0.0, 1.0, "a", "y:1")
        assert len(tr.by_engine("a")) == 2
        assert len(tr.by_label("x:")) == 2

    def test_clear(self):
        tr = Tracer()
        tr.record(0.0, 1.0, "a", "x")
        tr.clear()
        assert tr.intervals == []


spans_strategy = st.lists(
    st.tuples(
        st.floats(min_value=0, max_value=1e3, allow_nan=False),
        st.floats(min_value=0, max_value=1e3, allow_nan=False),
    ).map(lambda t: (min(t), max(t))),
    max_size=30,
)


class TestUnionDuration:
    def test_empty(self):
        assert union_duration([]) == 0.0

    def test_disjoint(self):
        assert union_duration([(0, 1), (2, 3)]) == 2.0

    def test_nested(self):
        assert union_duration([(0, 10), (2, 3)]) == 10.0

    def test_touching(self):
        assert union_duration([(0, 1), (1, 2)]) == 2.0

    @given(spans_strategy)
    def test_union_at_most_sum(self, spans):
        assert union_duration(spans) <= sum(e - s for s, e in spans) + 1e-9

    @given(spans_strategy)
    def test_union_at_least_longest(self, spans):
        longest = max((e - s for s, e in spans), default=0.0)
        assert union_duration(spans) >= longest - 1e-9

    @given(spans_strategy)
    def test_union_within_hull(self, spans):
        if not spans:
            return
        lo = min(s for s, _ in spans)
        hi = max(e for _, e in spans)
        assert union_duration(spans) <= (hi - lo) + 1e-9

    @given(spans_strategy, spans_strategy)
    def test_union_monotone_under_superset(self, a, b):
        assert union_duration(a + b) >= union_duration(a) - 1e-9
