"""Figure 5: vector GPU-GPU latency, three designs."""

from repro.bench import fig5_vector_latency
from conftest import run_experiment


def test_fig5_vector_latency(benchmark):
    result = run_experiment(
        benchmark, fig5_vector_latency, scale="quick", iterations=2
    )
    large = result["large"][-1]
    # The paper's Figure 5 shape: the library and the hand-tuned pipeline
    # are close; both crush the naive design at large sizes.
    assert large["MV2-GPU-NC"] < large["Cpy2D+Send"] / 4
    ratio = large["MV2-GPU-NC"] / large["Cpy2DAsync+CpyAsync+Isend"]
    assert 0.5 < ratio < 1.5
    assert result["improvement_at_largest"] > 80  # paper: 88%
