"""Ablation B: how much of the speedup needs independent GPU engines."""

from repro.bench import ablation_engines
from conftest import run_experiment


def test_ablation_engines(benchmark):
    result = run_experiment(benchmark, ablation_engines, scale="quick")
    # Serializing pack/D2H/H2D on one engine must cost real time.
    assert result["slowdown_factor"] > 1.1
