"""Ablation D: the design's win survives on every RDMA-capable fabric."""

from repro.bench import ablation_interconnect
from conftest import run_experiment


def test_ablation_interconnect(benchmark):
    result = run_experiment(benchmark, ablation_interconnect, scale="quick")
    fabrics = result["fabrics"]
    # The fabrics genuinely differ on wire-bound traffic...
    assert (fabrics["QDR InfiniBand"]["contiguous_bw"]
            > 1.5 * fabrics["RoCE 10GbE"]["contiguous_bw"])
    # ...yet the non-contiguous improvement holds everywhere (paper Sec II-B).
    for name, row in fabrics.items():
        assert row["improvement_percent"] > 80, name
