"""OSU-style streaming bandwidth (the paper's tuning methodology, Sec IV-B)."""

import repro.bench.osu as osu
from repro.bench import format_size, series_table, table
from repro.hw import KiB, MiB


def test_osu_bandwidth(benchmark):
    def run():
        sizes = [16 * KiB, 256 * KiB, 1 * MiB]
        result = {"contiguous": [], "vector": []}
        for layout in ("contiguous", "vector"):
            for size in sizes:
                bw = osu.osu_bw(size, space="device", layout=layout)
                result[layout].append({"size": size, "bw_gbs": bw / 1e9})
        rows = [
            [format_size(c["size"]), f"{c['bw_gbs']:.2f}", f"{v['bw_gbs']:.2f}"]
            for c, v in zip(result["contiguous"], result["vector"])
        ]
        result["text"] = table(
            ["Size", "contiguous (GB/s)", "vector (GB/s)"], rows,
            title="osu_bw, GPU device buffers (QDR link: 3.2 GB/s)",
        )
        return result

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\n" + result["text"])
    # Contiguous streaming approaches the wire; strided is pack-bound.
    big_c = result["contiguous"][-1]["bw_gbs"]
    big_v = result["vector"][-1]["bw_gbs"]
    assert big_c > 1.5
    assert big_v < big_c
