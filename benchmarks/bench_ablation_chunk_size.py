"""Ablation A: pipeline chunk-size sweep (the paper's 64 KB tuning)."""

from repro.bench import ablation_chunk_size
from conftest import run_experiment


def test_ablation_chunk_size(benchmark):
    result = run_experiment(benchmark, ablation_chunk_size, scale="quick")
    lat = {p["size"]: p["latency"] for p in result["points"]}
    # The sweep is U-shaped: tiny chunks pay per-chunk overhead, giant
    # chunks lose overlap. The optimum sits in the middle of the sweep.
    assert min(lat) < result["best_chunk"] < max(lat)
