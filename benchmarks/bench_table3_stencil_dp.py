"""Table III: Stencil2D median step times, double precision."""

from repro.bench import tab3_stencil
from conftest import run_experiment


def test_table3_stencil_dp(benchmark):
    result = run_experiment(benchmark, tab3_stencil, scale="quick",
                            iterations=2)
    rows = {r["grid"]: r for r in result["rows"]}
    for r in result["rows"]:
        assert r["mv2nc"] <= r["def"]
    assert rows["1x8"]["improvement_percent"] > rows["8x1"]["improvement_percent"]
