"""Table II: Stencil2D median step times, single precision."""

from repro.bench import tab2_stencil
from conftest import run_experiment


def test_table2_stencil_sp(benchmark):
    result = run_experiment(benchmark, tab2_stencil, scale="quick",
                            iterations=2)
    rows = {r["grid"]: r for r in result["rows"]}
    # Every grid improves, and the non-contiguous-dominated grids improve
    # more than the contiguous-only 8x1 grid (the paper's ordering).
    for r in result["rows"]:
        assert r["mv2nc"] <= r["def"]
    assert rows["1x8"]["improvement_percent"] > rows["8x1"]["improvement_percent"]
    assert rows["2x4"]["improvement_percent"] > rows["4x2"]["improvement_percent"]
