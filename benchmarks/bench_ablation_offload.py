"""Ablation C: isolate the GPU datatype-processing offload contribution."""

from repro.bench import ablation_offload
from conftest import run_experiment


def test_ablation_offload(benchmark):
    result = run_experiment(benchmark, ablation_offload, scale="quick")
    # Offload must matter more as messages grow (more per-row DMA saved).
    speedups = [p["speedup"] for p in result["points"]]
    assert speedups[-1] > 3
    assert all(s >= 0.9 for s in speedups)
