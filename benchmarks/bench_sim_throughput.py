"""Simulator event throughput: how many events/second the kernel retires.

Not a paper figure -- this measures the *simulator's own* hot loop (the
event heap, the immediate lane, the pooled Timeout allocator), which is
what the compiled-plan/pooled-event work optimizes. The workload is a mesh
of timeout-driven processes: half advance by positive delays (heap path),
half by zero delays (immediate lane), which together mirror the mix the
5-stage pipeline generates.

Recording: the measured events/second is written to ``BENCH_hotpath.json``
as ``sim_throughput`` and guarded by ``tests/perf/test_sim_throughput.py``
(>30% below the recorded figure fails the perf tier).
"""

import os
import time

from repro.perf.hotpath import record_sim_throughput, record_wheel_baseline
from repro.sim import Environment

CHAINS = 64
DEPTH = 2_000
WORKLOAD = (
    f"{CHAINS} timeout chains x {DEPTH} deep, half zero-delay "
    "(immediate lane), half positive-delay (heap)"
)
WHEEL_WORKLOAD = "fig5:quick, verify off, 1 iteration (sequential)"


def run_workload(event_pooling: bool = True) -> Environment:
    """Drive the reference workload to completion; returns the environment."""
    env = Environment(event_pooling=event_pooling)

    def chain(i):
        delay = 0.0 if i % 2 == 0 else 1e-6 * (1 + i)
        for _ in range(DEPTH):
            yield env.timeout(delay)

    for i in range(CHAINS):
        env.process(chain(i), name=f"chain{i}")
    env.run()
    return env


def measure_events_per_second(repeats: int = 3,
                              event_pooling: bool = True) -> float:
    """Best-of-N events/second (scheduled events over wall-clock)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        env = run_workload(event_pooling=event_pooling)
        elapsed = time.perf_counter() - start
        best = max(best, env._eid / elapsed)
    return best


def measure_fig5_wallclock(event_wheel: bool, repeats: int = 5) -> float:
    """Best-of-N wall-clock for sequential fig5:quick, wheel on or off.

    A full-fidelity workload (the real 5-stage pipeline, not a synthetic
    timeout mesh): the guard on this pair enforces that the calendar
    wheel never pessimizes a paper experiment relative to the pure-heap
    hot loop it replaced.
    """
    from repro.bench.experiments import fig5_vector_latency

    saved = os.environ.get("REPRO_SIM_WHEEL")
    os.environ["REPRO_SIM_WHEEL"] = "1" if event_wheel else "0"
    try:
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fig5_vector_latency("quick", verify=False, iterations=1)
            best = min(best, time.perf_counter() - start)
        return best
    finally:
        if saved is None:
            os.environ.pop("REPRO_SIM_WHEEL", None)
        else:
            os.environ["REPRO_SIM_WHEEL"] = saved


def test_sim_event_throughput(benchmark):
    eps = benchmark.pedantic(measure_events_per_second, rounds=1, iterations=1)
    pooled_off = measure_events_per_second(repeats=1, event_pooling=False)
    benchmark.extra_info["events_per_second"] = round(eps)
    benchmark.extra_info["events_per_second_pooling_off"] = round(pooled_off)
    record_sim_throughput(eps, WORKLOAD)
    print(
        f"\nsim throughput: {eps / 1e6:.2f}M events/s pooled, "
        f"{pooled_off / 1e6:.2f}M events/s unpooled"
    )
    assert eps > 0


def test_wheel_vs_heap_baseline(benchmark):
    wheel = benchmark.pedantic(
        measure_fig5_wallclock, args=(True,), rounds=1, iterations=1
    )
    heap = measure_fig5_wallclock(False)
    benchmark.extra_info["wheel_seconds"] = round(wheel, 4)
    benchmark.extra_info["heap_seconds"] = round(heap, 4)
    record_wheel_baseline(wheel, heap, WHEEL_WORKLOAD)
    print(
        f"\nfig5:quick wall-clock: {wheel:.3f}s wheel, {heap:.3f}s heap "
        f"({heap / wheel:.2f}x)"
    )
    assert wheel > 0 and heap > 0
