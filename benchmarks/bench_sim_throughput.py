"""Simulator event throughput: how many events/second the kernel retires.

Not a paper figure -- this measures the *simulator's own* hot loop (the
event heap, the immediate lane, the pooled Timeout allocator), which is
what the compiled-plan/pooled-event work optimizes. The workload is a mesh
of timeout-driven processes: half advance by positive delays (heap path),
half by zero delays (immediate lane), which together mirror the mix the
5-stage pipeline generates.

Recording: the measured events/second is written to ``BENCH_hotpath.json``
as ``sim_throughput`` and guarded by ``tests/perf/test_sim_throughput.py``
(>30% below the recorded figure fails the perf tier).
"""

import time

from repro.perf.hotpath import record_sim_throughput
from repro.sim import Environment

CHAINS = 64
DEPTH = 2_000
WORKLOAD = (
    f"{CHAINS} timeout chains x {DEPTH} deep, half zero-delay "
    "(immediate lane), half positive-delay (heap)"
)


def run_workload(event_pooling: bool = True) -> Environment:
    """Drive the reference workload to completion; returns the environment."""
    env = Environment(event_pooling=event_pooling)

    def chain(i):
        delay = 0.0 if i % 2 == 0 else 1e-6 * (1 + i)
        for _ in range(DEPTH):
            yield env.timeout(delay)

    for i in range(CHAINS):
        env.process(chain(i), name=f"chain{i}")
    env.run()
    return env


def measure_events_per_second(repeats: int = 3,
                              event_pooling: bool = True) -> float:
    """Best-of-N events/second (scheduled events over wall-clock)."""
    best = 0.0
    for _ in range(repeats):
        start = time.perf_counter()
        env = run_workload(event_pooling=event_pooling)
        elapsed = time.perf_counter() - start
        best = max(best, env._eid / elapsed)
    return best


def test_sim_event_throughput(benchmark):
    eps = benchmark.pedantic(measure_events_per_second, rounds=1, iterations=1)
    pooled_off = measure_events_per_second(repeats=1, event_pooling=False)
    benchmark.extra_info["events_per_second"] = round(eps)
    benchmark.extra_info["events_per_second_pooling_off"] = round(pooled_off)
    record_sim_throughput(eps, WORKLOAD)
    print(
        f"\nsim throughput: {eps / 1e6:.2f}M events/s pooled, "
        f"{pooled_off / 1e6:.2f}M events/s unpooled"
    )
    assert eps > 0
