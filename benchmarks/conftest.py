"""Shared helpers for the per-figure/table benchmarks.

Each benchmark runs one paper experiment at ``quick`` scale through
pytest-benchmark (wall time of the simulation harness) and attaches the
*simulated* results -- the numbers that correspond to the paper's figures --
to ``benchmark.extra_info``. Regenerate full-scale paper tables with::

    python -m repro.bench all --scale full
"""

import json

import pytest


def run_experiment(benchmark, fn, **kwargs):
    """Run one experiment exactly once under pytest-benchmark."""
    result = benchmark.pedantic(lambda: fn(**kwargs), rounds=1, iterations=1)
    # Keep extra_info JSON-serializable and compact.
    info = {k: v for k, v in result.items() if k != "text"}
    benchmark.extra_info["simulated"] = json.loads(
        json.dumps(info, default=_jsonify)
    )
    print("\n" + result["text"])
    return result


def _jsonify(obj):
    try:
        return float(obj)
    except (TypeError, ValueError):
        return str(obj)
