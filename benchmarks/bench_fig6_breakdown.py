"""Figure 6: dimension-wise communication breakdown in Stencil2D-Def."""

from repro.bench import fig6_breakdown
from conftest import run_experiment


def test_fig6_breakdown(benchmark):
    result = run_experiment(benchmark, fig6_breakdown, scale="quick")
    b = result["breakdown"]
    # The paper's observation: non-contiguous device<->host movement (cuda,
    # east/west) dominates the communication time.
    ew_cuda = b["west_cuda"] + b["east_cuda"]
    total_mpi = b["south_mpi"] + b["west_mpi"] + b["east_mpi"]
    assert ew_cuda > total_mpi
    assert b["east_cuda"] > b["south_cuda" if "south_cuda" in b else "east_mpi"]
