"""Table I: code-complexity comparison of the two Stencil2D variants."""

from repro.bench import tab1_complexity
from conftest import run_experiment


def test_table1_complexity(benchmark):
    result = run_experiment(benchmark, tab1_complexity)
    # MV2-GPU-NC removes every CUDA staging call from the main loop.
    assert result["dynamic_calls"]["mv2nc"]["cudaMemcpy"] == 0
    assert result["dynamic_calls"]["mv2nc"]["cudaMemcpy2D"] == 0
    assert result["dynamic_calls"]["def"]["cudaMemcpy"] == 4
    assert result["dynamic_calls"]["def"]["cudaMemcpy2D"] == 4
    # And shrinks the exchange code (paper: 36% fewer lines).
    assert result["loc_reduction_percent"] > 15
