"""Figure 2 (+ Section I-A motivating numbers): pack-scheme latency."""

import pytest

from repro.baselines import measure_all_schemes
from repro.bench import fig2_pack_schemes
from conftest import run_experiment


def test_fig2_pack_schemes(benchmark):
    result = run_experiment(benchmark, fig2_pack_schemes, scale="quick")
    large = result["large"][-1]
    # Shape checks from the paper: the offloaded scheme wins big.
    assert large["d2d2h_nc2c2c"] < large["d2h_nc2nc"] / 5
    assert large["d2h_nc2c"] > large["d2h_nc2nc"]


def test_motivating_numbers(benchmark):
    """Section I-A: 4 KB vector costs ~200/281/35 us for options (a)/(b)/(c)."""

    def run():
        r = measure_all_schemes(4096)
        r["text"] = (
            "Section I-A (4 KB vector): "
            f"(a) nc2nc {r['d2h_nc2nc']*1e6:.0f} us (paper 200), "
            f"(b) nc2c {r['d2h_nc2c']*1e6:.0f} us (paper 281), "
            f"(c) d2d2h {r['d2d2h_nc2c2c']*1e6:.0f} us (paper 35)"
        )
        return r

    result = run_experiment(benchmark, run)
    assert 150e-6 < result["d2h_nc2nc"] < 260e-6
    assert 230e-6 < result["d2h_nc2c"] < 340e-6
    assert 20e-6 < result["d2d2h_nc2c2c"] < 55e-6
