#!/usr/bin/env sh
# Fast CI split: the non-slow test tier plus a quick-scale benchmark pass.
#
#   scripts/bench_smoke.sh            # smoke tests + quick benches
#   JOBS=4 scripts/bench_smoke.sh     # fan the benches across 4 workers
#
# The full tier-1 gate remains `PYTHONPATH=src python -m pytest -x -q`
# (which runs everything, slow and perf tests included).
set -eu

cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"
export PYTHONPATH

echo "== pytest (smoke tier: -m 'not slow') =="
python -m pytest -x -q -m "not slow"

echo "== benchmarks (quick scale) =="
python -m repro.bench all --scale quick --jobs "${JOBS:-2}"
